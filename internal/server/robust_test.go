package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/workload"
)

// blockingBackend holds every match until its gate opens, or until the
// request context is done — the controllable slow backend behind the
// admission-queue and deadline tests.
type blockingBackend struct {
	*testBackend
	gate chan struct{}
}

func (b *blockingBackend) MatchIncoming(ctx context.Context, incoming *schema.Schema, topK int, allowPartial, exhaustive bool) ([]server.Match, []server.ShardFailure, error) {
	select {
	case <-b.gate:
		return b.testBackend.MatchIncoming(ctx, incoming, topK, allowPartial, exhaustive)
	case <-ctx.Done():
		return nil, nil, context.Cause(ctx)
	}
}

// newBlockingServer builds a server over a blocking backend holding
// one stored schema, returning the httptest server, the backend, and
// the stored schema's name (a resolvable match target).
func newBlockingServer(t *testing.T, cfg server.Config) (*httptest.Server, *blockingBackend, string) {
	t.Helper()
	bb := &blockingBackend{testBackend: newTestBackend(t), gate: make(chan struct{})}
	s := workload.Candidates(1)[0]
	if _, err := bb.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	cfg.Backend = bb
	ts := httptest.NewServer(server.New(cfg))
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		// Unblock any request a failed test left parked in the backend.
		select {
		case <-bb.gate:
		default:
			close(bb.gate)
		}
	})
	return ts, bb, s.Name
}

// postMatch posts a by-name match request under ctx and returns the
// raw response for status and header assertions.
func postMatch(ctx context.Context, url, name string) (*http.Response, error) {
	buf, err := json.Marshal(server.MatchRequest{Schema: server.SchemaPayload{Name: name}})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/match", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return http.DefaultClient.Do(req)
}

// waitReady polls /readyz until cond holds, failing the test after 5s.
func waitReady(t *testing.T, url string, cond func(server.Readiness) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var state server.Readiness
		err = json.NewDecoder(resp.Body).Decode(&state)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cond(state) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("readiness condition not reached; last state %+v", state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// errorBody decodes and closes an error response's JSON body.
func errorBody(t *testing.T, resp *http.Response) server.ErrorResponse {
	t.Helper()
	defer resp.Body.Close()
	var e server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return e
}

// TestServerQueueShedding: with one worker slot and a queue bound of
// one, a third concurrent match is shed immediately with 429 and a
// Retry-After hint, while the admitted requests complete once the
// backend unblocks.
func TestServerQueueShedding(t *testing.T) {
	ts, bb, name := newBlockingServer(t, server.Config{Workers: 1, QueueLimit: 1, Shards: 1})
	statuses := make(chan int, 2)
	launch := func() {
		go func() {
			resp, err := postMatch(context.Background(), ts.URL, name)
			if err != nil {
				t.Error(err)
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}

	launch() // takes the worker slot
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.InFlight == 1 })
	launch() // waits in the queue
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.Queued == 1 })

	resp, err := postMatch(context.Background(), ts.URL, name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("third concurrent match: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}
	if e := errorBody(t, resp); e.Error == "" {
		t.Error("shed response carries no JSON error")
	}

	close(bb.gate)
	for i := 0; i < 2; i++ {
		if code := <-statuses; code != http.StatusOK {
			t.Errorf("admitted match %d finished with HTTP %d, want 200", i, code)
		}
	}
}

// TestServerQueueWaitTimeout: a request that cannot get a worker slot
// within QueueTimeout is shed with 503 instead of waiting forever.
func TestServerQueueWaitTimeout(t *testing.T) {
	ts, bb, name := newBlockingServer(t, server.Config{
		Workers: 1, QueueTimeout: 50 * time.Millisecond, Shards: 1,
	})
	first := make(chan int, 1)
	go func() {
		resp, err := postMatch(context.Background(), ts.URL, name)
		if err != nil {
			t.Error(err)
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.InFlight == 1 })

	resp, err := postMatch(context.Background(), ts.URL, name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("queue-wait timeout: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-wait timeout carries no Retry-After")
	}
	errorBody(t, resp)

	close(bb.gate)
	if code := <-first; code != http.StatusOK {
		t.Errorf("in-flight match finished with HTTP %d, want 200", code)
	}
}

// TestServerCanceledWhileQueued: a client abandoning its queued
// request frees the queue slot without disturbing the in-flight match.
func TestServerCanceledWhileQueued(t *testing.T) {
	ts, bb, name := newBlockingServer(t, server.Config{Workers: 1, Shards: 1})
	first := make(chan int, 1)
	go func() {
		resp, err := postMatch(context.Background(), ts.URL, name)
		if err != nil {
			t.Error(err)
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.InFlight == 1 })

	cctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		resp, err := postMatch(cctx, ts.URL, name)
		if err == nil {
			resp.Body.Close()
		}
		queuedErr <- err
	}()
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.Queued == 1 })
	cancel()
	if err := <-queuedErr; err == nil {
		t.Error("canceled queued request reported success")
	}
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.Queued == 0 && r.InFlight == 1 })

	close(bb.gate)
	if code := <-first; code != http.StatusOK {
		t.Errorf("in-flight match finished with HTTP %d, want 200", code)
	}
	resp, err := postMatch(context.Background(), ts.URL, name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("match after queue churn: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestServerMatchDeadline: MatchTimeout bounds every match; a backend
// that cannot finish in time yields 504 Gateway Timeout, and the
// server keeps serving afterwards.
func TestServerMatchDeadline(t *testing.T) {
	ts, bb, name := newBlockingServer(t, server.Config{
		Workers: 2, MatchTimeout: 40 * time.Millisecond, Shards: 1,
	})
	resp, err := postMatch(context.Background(), ts.URL, name)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timed-out match: HTTP %d, want 504", resp.StatusCode)
	}
	if e := errorBody(t, resp); e.Error == "" {
		t.Error("timed-out match carries no JSON error")
	}

	close(bb.gate) // the backend answers instantly from here on
	resp, err = postMatch(context.Background(), ts.URL, name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("match within deadline: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestServerFaultHook: the fault-injection hook fails exactly the
// targeted operation with 500 and injects nothing once cleared.
func TestServerFaultHook(t *testing.T) {
	var failOp atomic.Value // operation name to fail; "" injects nothing
	failOp.Store("")
	b := newTestBackend(t)
	ts := httptest.NewServer(server.New(server.Config{
		Backend: b, Workers: 2, Shards: 1,
		FaultHook: func(op string) error {
			if failOp.Load() == op {
				return errors.New("injected fault")
			}
			return nil
		},
	}))
	t.Cleanup(ts.Close)
	s := workload.Candidates(1)[0]
	if _, err := b.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	putBody := server.SchemaPayload{Format: "xsd", Source: xsdOf(t, workload.Schemas()[0])}

	cases := []struct {
		op     string
		invoke func() int
	}{
		{"match", func() int {
			resp, err := postMatch(context.Background(), ts.URL, s.Name)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp.StatusCode
		}},
		{"put", func() int {
			var out server.SchemaInfo
			return doJSON(t, http.MethodPut, ts.URL+"/schemas/Injected", putBody, &out)
		}},
		{"delete", func() int {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/schemas/Injected", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}},
	}
	// Each op fails only while targeted.
	for _, c := range cases {
		failOp.Store(c.op)
		if code := c.invoke(); code != http.StatusInternalServerError {
			t.Errorf("fault %q: HTTP %d, want 500", c.op, code)
		}
	}
	failOp.Store("")
	for _, c := range cases {
		if code := c.invoke(); code >= 400 && code != http.StatusNotFound {
			t.Errorf("cleared fault %q: HTTP %d, want success", c.op, code)
		}
	}
}
