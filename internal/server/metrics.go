package server

import (
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// MetricsSource is implemented by backends that have their own
// counters to expose (cache stats, prune totals, storage timings). New
// calls it once after building the server's registry, so the backend
// registers whatever it has alongside the HTTP-layer metrics.
type MetricsSource interface {
	CollectMetrics(reg *metrics.Registry)
}

// initMetrics builds the server's registry and HTTP-layer instruments
// (skipped entirely when cfg.DisableMetrics) and lets a MetricsSource
// backend contribute its own.
func (s *Server) initMetrics(cfg Config) {
	if cfg.DisableMetrics {
		return
	}
	reg := metrics.NewRegistry()
	s.reg = reg
	s.httpRequests = reg.CounterVec("coma_http_requests_total",
		"HTTP requests by endpoint and status class.", "endpoint", "class")
	s.httpSeconds = reg.HistogramVec("coma_http_request_seconds",
		"HTTP request latency by endpoint.", nil, "endpoint")
	s.matchExec = reg.Histogram("coma_match_exec_seconds",
		"Admitted match execution time (slot acquired to result).", nil)
	s.queueWait = reg.Histogram("coma_match_queue_wait_seconds",
		"Time match requests spent waiting for an execution slot.", nil)
	s.shed = reg.CounterVec("coma_match_shed_total",
		"Match requests shed by the admission layer, by reason.", "reason")
	reg.GaugeFunc("coma_match_queue_depth",
		"Match requests currently waiting for an execution slot.",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("coma_match_inflight",
		"Match requests currently executing.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("coma_match_workers",
		"Execution slots (the admission semaphore's capacity).",
		func() float64 { return float64(cap(s.sem)) })
	if src, ok := s.backend.(MetricsSource); ok {
		src.CollectMetrics(reg)
	}
}

// handleMetrics serves the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// endpointLabel classifies a request path into a bounded label set —
// path values (schema names) must never become label values, or the
// exposition grows one series per schema ever named.
func endpointLabel(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	case path == "/metrics":
		return "metrics"
	case path == "/match":
		return "match"
	case path == "/schemas":
		return "schemas"
	case strings.HasPrefix(path, "/schemas/"):
		return "schema"
	}
	return "other"
}

// classLabel maps a status code to its class ("2xx".."5xx").
func classLabel(status int) string {
	if status < 100 || status > 599 {
		return "5xx"
	}
	return strconv.Itoa(status/100) + "xx"
}

// statusRecorder captures the response status for the request metrics
// and log. Handlers here only write JSON/text bodies, so the plain
// ResponseWriter surface suffices.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// observeRequest records one finished request into the HTTP-layer
// instruments and the request log.
func (s *Server) observeRequest(r *http.Request, status int, elapsed time.Duration) {
	endpoint := endpointLabel(r.URL.Path)
	s.httpRequests.With(endpoint, classLabel(status)).Inc()
	s.httpSeconds.With(endpoint).Observe(elapsed.Seconds())
	if s.reqLog != nil {
		s.reqLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// retryAfterSeconds derives the Retry-After hint the shed paths send:
// the estimated time for the work ahead of a returning client to drain
// — (queued + in-flight + 1) requests at the observed mean match
// execution time, cap(sem) at a time — clamped to [1s, 60s]. With no
// samples yet (or metrics disabled) the mean falls back to 1s, so the
// hint still scales with occupancy. A draining server floors the hint
// at 5s: it will never serve this process again, so fast retries are
// pure waste, but its replacement should be up shortly.
func (s *Server) retryAfterSeconds() int {
	mean := s.matchExec.Mean()
	if mean <= 0 {
		mean = 1
	}
	ahead := float64(s.queued.Load()+s.inflight.Load()) + 1
	secs := int(math.Ceil(mean * ahead / float64(cap(s.sem))))
	if s.draining.Load() && secs < 5 {
		secs = 5
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// shedResponse answers a shed match request: Retry-After derived from
// current occupancy, the shed reason counted, and the uniform JSON
// error body.
func (s *Server) shedResponse(w http.ResponseWriter, status int, reason, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.shed.With(reason).Inc()
	writeError(w, status, format, args...)
}

// ServerMetrics is a point-in-time snapshot of every exposed series,
// for embedded users and tests (scrapers use /metrics instead).
type ServerMetrics struct {
	// Samples holds one entry per series, sorted by name then labels;
	// histograms contribute _sum and _count series.
	Samples []metrics.Sample
}

// Value returns the named unlabeled series' value (0 when absent).
func (m ServerMetrics) Value(name string) float64 {
	return m.Labeled(name, "")
}

// Labeled returns the series with the exact canonical label string,
// e.g. Labeled("coma_http_requests_total", `endpoint="match",class="2xx"`).
func (m ServerMetrics) Labeled(name, labels string) float64 {
	for _, s := range m.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value
		}
	}
	return 0
}

// Sum returns the sum over every label combination of the named series.
func (m ServerMetrics) Sum(name string) float64 {
	var total float64
	for _, s := range m.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// Metrics snapshots the server's registry; ok is false when metrics
// are disabled.
func (s *Server) Metrics() (ServerMetrics, bool) {
	if s.reg == nil {
		return ServerMetrics{}, false
	}
	return ServerMetrics{Samples: s.reg.Snapshot()}, true
}
