package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/match"
	"repro/internal/repository"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/workload"
)

// testBackend is a minimal server.Backend over one Repo: the second,
// independent implementation of the interface next to the public coma
// adapters, pinning that the server contract does not secretly depend
// on either.
type testBackend struct {
	*repository.Repo
	ctx *match.Context
	cfg core.Config
}

func (b *testBackend) PutSchema(s *schema.Schema) (bool, error) {
	prev, err := b.Repo.SwapSchema(s)
	return prev != nil, err
}

func (b *testBackend) DeleteSchema(name string) (bool, error) {
	prev, err := b.Repo.TakeSchema(name)
	return prev != nil, err
}

func newTestBackend(t *testing.T) *testBackend {
	t.Helper()
	repo, err := repository.Open(filepath.Join(t.TempDir(), "server.repo"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	return &testBackend{Repo: repo, ctx: match.NewContext(), cfg: core.DefaultConfig()}
}

// IndexStats reports no candidate index: the test backend always
// matches exhaustively.
func (b *testBackend) IndexStats() (server.IndexReadiness, bool) {
	return server.IndexReadiness{}, false
}

func (b *testBackend) Recovery() []server.RecoveryStatus { return nil }

// PageCache surfaces the backing Repo's buffer pool so /readyz tests
// can see paged-store state through the second implementation too.
func (b *testBackend) PageCache() (server.PageCacheStatus, bool) {
	st := b.Repo.PageCacheStats()
	return server.PageCacheStatus{
		Capacity: st.Capacity, Resident: st.Resident, Pinned: st.Pinned,
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
	}, true
}

// WarmStart reports no warm restore: the test backend opens cold.
func (b *testBackend) WarmStart() (server.WarmStartStatus, bool) {
	return server.WarmStartStatus{}, false
}

func (b *testBackend) MatchIncoming(ctx context.Context, incoming *schema.Schema, topK int, allowPartial, exhaustive bool) ([]server.Match, []server.ShardFailure, error) {
	stored := b.Schemas()
	candidates := stored[:0:0]
	for _, s := range stored {
		if s.Name != incoming.Name {
			candidates = append(candidates, s)
		}
	}
	opt := core.BatchOptions{TopK: topK}
	results, err := core.MatchAll(ctx, b.ctx, incoming, candidates, b.cfg, opt)
	if err != nil {
		return nil, nil, err
	}
	var out []server.Match
	for i, res := range results {
		if res != nil {
			out = append(out, server.Match{Schema: candidates[i], Result: res})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Result.SchemaSim != out[j].Result.SchemaSim {
			return out[i].Result.SchemaSim > out[j].Result.SchemaSim
		}
		return out[i].Schema.Name < out[j].Schema.Name
	})
	return out, nil, nil
}

// newTestServer starts an httptest server over a fresh backend.
func newTestServer(t *testing.T) (*httptest.Server, *testBackend) {
	t.Helper()
	b := newTestBackend(t)
	ts := httptest.NewServer(server.New(server.Config{Backend: b, Workers: 2, Shards: 1}))
	t.Cleanup(ts.Close)
	return ts, b
}

// doJSON performs a request with an optional JSON body and decodes the
// JSON response.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// xsdOf serializes a workload schema for inline transport.
func xsdOf(t *testing.T, s *schema.Schema) string {
	t.Helper()
	var buf bytes.Buffer
	if err := export.SchemaXSD(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestServerHealthz(t *testing.T) {
	ts, b := newTestServer(t)
	var h server.Health
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h.Status != "ok" || h.Schemas != 0 || h.Shards != 1 {
		t.Errorf("healthz = %+v", h)
	}
	if _, err := b.PutSchema(workload.Candidates(1)[0]); err != nil {
		t.Fatal(err)
	}
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h)
	if h.Schemas != 1 {
		t.Errorf("healthz after put: %d schemas", h.Schemas)
	}
}

func TestServerSchemaLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	src := xsdOf(t, workload.Schemas()[0])

	// Create.
	var info server.SchemaInfo
	code := doJSON(t, http.MethodPut, ts.URL+"/schemas/PO-A",
		server.SchemaPayload{Format: "xsd", Source: src}, &info)
	if code != http.StatusCreated {
		t.Fatalf("PUT new schema: HTTP %d", code)
	}
	if info.Name != "PO-A" || info.Paths == 0 {
		t.Errorf("PUT response = %+v", info)
	}
	// Replace: same name answers 200, not 201.
	if code := doJSON(t, http.MethodPut, ts.URL+"/schemas/PO-A",
		server.SchemaPayload{Format: "xsd", Source: src}, &info); code != http.StatusOK {
		t.Errorf("PUT replace: HTTP %d", code)
	}

	// List.
	var list server.SchemasResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/schemas", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /schemas: HTTP %d", code)
	}
	if len(list.Schemas) != 1 || list.Schemas[0].Name != "PO-A" || list.Schemas[0].Paths != info.Paths {
		t.Errorf("schema list = %+v", list)
	}

	// Detail.
	var detail server.SchemaDetail
	if code := doJSON(t, http.MethodGet, ts.URL+"/schemas/PO-A", nil, &detail); code != http.StatusOK {
		t.Fatalf("GET /schemas/PO-A: HTTP %d", code)
	}
	if len(detail.Paths) != info.Paths {
		t.Errorf("detail has %d paths, info %d", len(detail.Paths), info.Paths)
	}

	// Delete, then 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/schemas/PO-A", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	var apiErr server.ErrorResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/schemas/PO-A", nil, &apiErr); code != http.StatusNotFound {
		t.Errorf("GET deleted schema: HTTP %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/schemas/PO-A", nil, &apiErr); code != http.StatusNotFound {
		t.Errorf("DELETE missing schema: HTTP %d", code)
	}
}

func TestServerMatchInlineAndStored(t *testing.T) {
	ts, b := newTestServer(t)
	all := workload.Candidates(5)
	incoming, stored := all[0], all[1:]
	for _, s := range stored {
		if _, err := b.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}

	var resp server.MatchResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/match", server.MatchRequest{
		Schema: server.SchemaPayload{Name: incoming.Name, Format: "xsd", Source: xsdOf(t, incoming)},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("POST /match: HTTP %d", code)
	}
	if resp.Incoming != incoming.Name || len(resp.Candidates) != len(stored) {
		t.Fatalf("match response: incoming %q, %d candidates", resp.Incoming, len(resp.Candidates))
	}
	for i := 1; i < len(resp.Candidates); i++ {
		if resp.Candidates[i].SchemaSim > resp.Candidates[i-1].SchemaSim {
			t.Errorf("candidates not ranked: %v after %v",
				resp.Candidates[i].SchemaSim, resp.Candidates[i-1].SchemaSim)
		}
	}
	for _, c := range resp.Candidates {
		if len(c.Correspondences) == 0 {
			t.Errorf("candidate %s without correspondences", c.Schema)
		}
	}

	// TopK cuts the candidate list.
	var short server.MatchResponse
	doJSON(t, http.MethodPost, ts.URL+"/match", server.MatchRequest{
		Schema: server.SchemaPayload{Name: incoming.Name, Format: "xsd", Source: xsdOf(t, incoming)},
		TopK:   2,
	}, &short)
	if len(short.Candidates) != 2 {
		t.Fatalf("TopK 2: %d candidates", len(short.Candidates))
	}
	for i, c := range short.Candidates {
		if c.Schema != resp.Candidates[i].Schema || c.SchemaSim != resp.Candidates[i].SchemaSim {
			t.Errorf("shortlist[%d] = %+v, want %+v", i, c, resp.Candidates[i])
		}
	}

	// A stored schema matched by name skips itself.
	var byName server.MatchResponse
	code = doJSON(t, http.MethodPost, ts.URL+"/match", server.MatchRequest{
		Schema: server.SchemaPayload{Name: stored[0].Name},
	}, &byName)
	if code != http.StatusOK {
		t.Fatalf("POST /match by name: HTTP %d", code)
	}
	if len(byName.Candidates) != len(stored)-1 {
		t.Errorf("match by name: %d candidates, want %d", len(byName.Candidates), len(stored)-1)
	}
	for _, c := range byName.Candidates {
		if c.Schema == stored[0].Name {
			t.Errorf("stored schema matched against itself")
		}
	}
}

func TestServerErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	post := func(body string) (int, server.ErrorResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var apiErr server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&apiErr)
		return resp.StatusCode, apiErr
	}

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{`, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"trailing garbage", `{"schema":{"name":"X"}} trailing`, http.StatusBadRequest},
		{"no schema", `{"schema":{}}`, http.StatusBadRequest},
		{"negative topK", `{"schema":{"name":"X"},"topK":-1}`, http.StatusBadRequest},
		{"unknown stored schema", `{"schema":{"name":"NoSuch"}}`, http.StatusNotFound},
		{"inline without format", `{"schema":{"name":"X","source":"CREATE TABLE T (a INT);"}}`, http.StatusUnprocessableEntity},
		{"unknown format", `{"schema":{"name":"X","format":"avro","source":"x"}}`, http.StatusUnprocessableEntity},
		{"unparsable source", `{"schema":{"name":"X","format":"xsd","source":"not xml"}}`, http.StatusUnprocessableEntity},
		{"empty schema", `{"schema":{"name":"X","format":"sql","source":"-- no tables"}}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		code, apiErr := post(tc.body)
		if code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, code, tc.want)
		}
		if code != http.StatusOK && apiErr.Error == "" {
			t.Errorf("%s: error body missing", tc.name)
		}
	}

	// PUT with a contradicting payload name.
	var apiErr server.ErrorResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/schemas/A",
		server.SchemaPayload{Name: "B", Format: "sql", Source: "CREATE TABLE B.T (a INT);"}, &apiErr); code != http.StatusBadRequest {
		t.Errorf("PUT contradicting name: HTTP %d (%s)", code, apiErr.Error)
	}
	// PUT without inline source.
	if code := doJSON(t, http.MethodPut, ts.URL+"/schemas/A",
		server.SchemaPayload{}, &apiErr); code != http.StatusBadRequest {
		t.Errorf("PUT without source: HTTP %d", code)
	}
	// Unrouted method.
	resp, err := http.Post(ts.URL+"/schemas", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /schemas: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestServerConcurrentPutSameName: racing imports of one name agree on
// exactly one creator — the atomic swap contract of Backend.PutSchema.
func TestServerConcurrentPutSameName(t *testing.T) {
	ts, _ := newTestServer(t)
	src := xsdOf(t, workload.Schemas()[0])
	const n = 8
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = doJSON(t, http.MethodPut, ts.URL+"/schemas/Same",
				server.SchemaPayload{Format: "xsd", Source: src}, new(server.SchemaInfo))
		}(i)
	}
	wg.Wait()
	created := 0
	for i, code := range statuses {
		switch code {
		case http.StatusCreated:
			created++
		case http.StatusOK:
		default:
			t.Errorf("put %d: HTTP %d", i, code)
		}
	}
	if created != 1 {
		t.Errorf("%d imports claim to have created the schema, want exactly 1", created)
	}
}

// TestServerChurn floods a live server with concurrent schema imports
// and match requests — the satellite -race test at the HTTP layer.
func TestServerChurn(t *testing.T) {
	ts, b := newTestServer(t)
	seed := workload.Candidates(4)
	for _, s := range seed {
		if _, err := b.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	writers, matchers, rounds := 3, 3, 6
	sources := make([]string, writers*rounds)
	extra := workload.Candidates(writers * rounds)
	for i := range sources {
		extra[i].Name = fmt.Sprintf("churn-%03d", i)
		sources[i] = xsdOf(t, extra[i])
	}
	incoming := xsdOf(t, workload.Schemas()[1])

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := w*rounds + r
				var info server.SchemaInfo
				code := doJSON(t, http.MethodPut,
					fmt.Sprintf("%s/schemas/churn-%03d", ts.URL, i),
					server.SchemaPayload{Format: "xsd", Source: sources[i]}, &info)
				if code != http.StatusCreated && code != http.StatusOK {
					t.Errorf("churn PUT %d: HTTP %d", i, code)
					return
				}
			}
		}(w)
	}
	for m := 0; m < matchers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var resp server.MatchResponse
				code := doJSON(t, http.MethodPost, ts.URL+"/match", server.MatchRequest{
					Schema: server.SchemaPayload{Name: "incoming", Format: "xsd", Source: incoming},
					TopK:   3,
				}, &resp)
				if code != http.StatusOK {
					t.Errorf("churn match: HTTP %d", code)
					return
				}
				if len(resp.Candidates) == 0 {
					t.Error("churn match: no candidates")
					return
				}
			}
		}()
	}
	wg.Wait()
	var h server.Health
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h)
	if want := len(seed) + writers*rounds; h.Schemas != want {
		t.Errorf("schemas after churn = %d, want %d", h.Schemas, want)
	}
}

// TestServerBodyTooLarge: an upload beyond the configured body cap is
// answered with a uniform JSON 413 on both write endpoints instead of
// being buffered onto the heap (satellite: request body bound).
func TestServerBodyTooLarge(t *testing.T) {
	b := newTestBackend(t)
	ts := httptest.NewServer(server.New(server.Config{
		Backend: b, Workers: 2, MaxBodyBytes: 2 << 10,
	}))
	t.Cleanup(ts.Close)

	huge, err := json.Marshal(server.SchemaPayload{
		Format: "sql",
		Source: "CREATE TABLE T (a INT); -- " + strings.Repeat("x", 8<<10),
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(method, url string, body []byte) {
		t.Helper()
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s: HTTP %d, want 413", method, url, resp.StatusCode)
		}
		var apiErr server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Errorf("%s %s: non-JSON 413 body: %v", method, url, err)
		} else if apiErr.Error == "" {
			t.Errorf("%s %s: empty error message", method, url)
		}
	}
	check(http.MethodPut, ts.URL+"/schemas/Big", huge)

	match, err := json.Marshal(server.MatchRequest{Schema: server.SchemaPayload{
		Format: "sql",
		Source: "CREATE TABLE T (a INT); -- " + strings.Repeat("y", 8<<10),
	}})
	if err != nil {
		t.Fatal(err)
	}
	check(http.MethodPost, ts.URL+"/match", match)

	// A body under the cap still goes through the normal pipeline.
	var info server.SchemaInfo
	if code := doJSON(t, http.MethodPut, ts.URL+"/schemas/Small",
		server.SchemaPayload{Format: "sql", Source: "CREATE TABLE PO.T (a INT);"}, &info); code != http.StatusCreated {
		t.Errorf("small PUT under the cap: HTTP %d, want 201", code)
	}
}
