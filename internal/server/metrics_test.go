package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

// newMetricsServer builds a server over a plain test backend and keeps
// the *server.Server handle so tests can snapshot its registry.
func newMetricsServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server, *testBackend) {
	t.Helper()
	b := newTestBackend(t)
	cfg.Backend = b
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, b
}

// TestMetricsEndpoint: /metrics serves Prometheus text exposition and
// the HTTP-layer instruments advance with traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts, srv, b := newMetricsServer(t, server.Config{Workers: 2, Shards: 1})
	for _, s := range workload.Candidates(2) {
		if _, err := b.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := postMatch(context.Background(), ts.URL, workload.Candidates(2)[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: HTTP %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE coma_http_requests_total counter",
		`coma_http_requests_total{endpoint="match",class="2xx"} 1`,
		"# TYPE coma_http_request_seconds histogram",
		"coma_http_request_seconds_bucket{endpoint=\"match\",le=\"+Inf\"} 1",
		"coma_match_exec_seconds_count 1",
		"coma_match_queue_wait_seconds_count 1",
		"coma_match_workers 2",
		"coma_match_queue_depth 0",
		"coma_match_inflight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics() not ok with metrics enabled")
	}
	if got := m.Labeled("coma_http_requests_total", `endpoint="match",class="2xx"`); got != 1 {
		t.Errorf("snapshot match 2xx counter = %v, want 1", got)
	}
	if got := m.Value("coma_match_exec_seconds_count"); got != 1 {
		t.Errorf("snapshot exec count = %v, want 1", got)
	}
}

// TestMetricsDisabled: DisableMetrics removes the endpoint and the
// registry but leaves the handlers working.
func TestMetricsDisabled(t *testing.T) {
	ts, srv, _ := newMetricsServer(t, server.Config{Workers: 1, Shards: 1, DisableMetrics: true})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics with metrics disabled: HTTP %d, want 404", resp.StatusCode)
	}
	if _, ok := srv.Metrics(); ok {
		t.Error("Metrics() ok with metrics disabled")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz with metrics disabled: HTTP %d, want 200", resp.StatusCode)
	}
}

// parseRetryAfter asserts a shed response's Retry-After is a positive
// integer number of seconds within the derivation's clamp.
func parseRetryAfter(t *testing.T, resp *http.Response) int {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	secs, err := strconv.Atoi(h)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", h, err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %d outside [1, 60]", secs)
	}
	return secs
}

// TestRetryAfterDerived: the shed paths derive Retry-After from queue
// occupancy — a full queue yields a clamped positive hint, a draining
// server floors it at 5s — and count each shed by reason.
func TestRetryAfterDerived(t *testing.T) {
	bb := &blockingBackend{testBackend: newTestBackend(t), gate: make(chan struct{})}
	s := workload.Candidates(1)[0]
	if _, err := bb.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Backend: bb, Workers: 1, QueueLimit: 1, Shards: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(bb.gate) })

	done := make(chan struct{}, 2)
	launch := func() {
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := postMatch(context.Background(), ts.URL, s.Name)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	launch() // occupies the one worker slot
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.InFlight == 1 })
	launch() // parks in the queue
	waitReady(t, ts.URL, func(r server.Readiness) bool { return r.Queued == 1 })

	resp, err := postMatch(context.Background(), ts.URL, s.Name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow match: HTTP %d, want 429", resp.StatusCode)
	}
	// One queued + one in flight + this request at the 1s no-samples
	// default mean over one slot: the derivation must see the occupancy,
	// not a hardcoded 1.
	if secs := parseRetryAfter(t, resp); secs < 3 {
		t.Errorf("queue-full Retry-After = %d, want >= 3 with 2 requests ahead", secs)
	}

	srv.Drain()
	resp, err = postMatch(context.Background(), ts.URL, s.Name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining match: HTTP %d, want 503", resp.StatusCode)
	}
	if secs := parseRetryAfter(t, resp); secs < 5 {
		t.Errorf("draining Retry-After = %d, want >= 5", secs)
	}

	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics() not ok")
	}
	if got := m.Labeled("coma_match_shed_total", `reason="queue_full"`); got != 1 {
		t.Errorf("queue_full shed counter = %v, want 1", got)
	}
	if got := m.Labeled("coma_match_shed_total", `reason="draining"`); got != 1 {
		t.Errorf("draining shed counter = %v, want 1", got)
	}
}
