package server

import (
	"fmt"

	"repro/internal/importer"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// SchemaPayload names a schema over the wire: either a reference to a
// stored schema (Name only) or an inline schema (Name plus Format and
// Source), imported server-side with the same dispatch as
// coma.LoadFile.
type SchemaPayload struct {
	// Name is the schema name — of a stored schema when Source is
	// empty, of the inline schema otherwise.
	Name string `json:"name"`
	// Format selects the importer for Source: sql, ddl, xsd, xml, json
	// or dtd (a leading dot is accepted, so file extensions pass
	// through unchanged).
	Format string `json:"format,omitempty"`
	// Source is the schema document text; empty means Name references a
	// stored schema.
	Source string `json:"source,omitempty"`
}

// Inline reports whether the payload carries an inline schema source.
func (p SchemaPayload) Inline() bool { return p.Source != "" }

// MatchRequest is the body of POST /match: match the given schema —
// inline or stored — against every schema in the repository.
type MatchRequest struct {
	Schema SchemaPayload `json:"schema"`
	// TopK keeps only the K best candidates (0 = all).
	TopK int `json:"topK,omitempty"`
	// AllowPartial opts into graceful degradation on a sharded backend:
	// a failed shard is dropped from the ranking and reported in
	// MatchResponse.FailedShards instead of failing the request.
	AllowPartial bool `json:"allowPartial,omitempty"`
	// Exhaustive forces the full pipeline on every stored schema,
	// bypassing the backend's candidate-pruning index. Pruned results
	// are bit-identical to exhaustive ones, so the switch exists for
	// verification and baseline benchmarking, not correctness.
	Exhaustive bool `json:"exhaustive,omitempty"`
}

// Correspondence is one element correspondence of a wire mapping.
type Correspondence struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Sim  float64 `json:"sim"`
}

// MatchCandidate is one ranked outcome of a match request.
type MatchCandidate struct {
	// Schema is the stored candidate's name.
	Schema string `json:"schema"`
	// SchemaSim is the combined schema similarity of the pair.
	SchemaSim float64 `json:"schemaSim"`
	// Correspondences is the selected mapping, incoming-side first.
	Correspondences []Correspondence `json:"correspondences"`
}

// ShardFailure reports one shard dropped from a partial match result.
type ShardFailure struct {
	// Shard is the failed shard's index.
	Shard int `json:"shard"`
	// Error is the failure's message.
	Error string `json:"error"`
}

// MatchResponse is the body answering POST /match: stored candidates
// ranked by descending combined schema similarity. With
// MatchRequest.AllowPartial, a response missing failed shards'
// candidates carries Partial = true and names the dropped shards.
type MatchResponse struct {
	Incoming   string           `json:"incoming"`
	Candidates []MatchCandidate `json:"candidates"`
	// Partial marks a degraded result: one or more shards failed and
	// their candidates are absent from the ranking.
	Partial bool `json:"partial,omitempty"`
	// FailedShards lists the dropped shards, ordered by shard index.
	FailedShards []ShardFailure `json:"failedShards,omitempty"`
}

// SchemaInfo summarizes one stored schema.
type SchemaInfo struct {
	Name  string `json:"name"`
	Paths int    `json:"paths"`
}

// SchemasResponse is the body answering GET /schemas.
type SchemasResponse struct {
	Schemas []SchemaInfo `json:"schemas"`
}

// SchemaDetail is the body answering GET /schemas/{name}: the stored
// schema's path enumeration, the element vocabulary matchers score.
type SchemaDetail struct {
	Name  string   `json:"name"`
	Paths []string `json:"paths"`
}

// Health is the body answering GET /healthz — pure liveness plus
// store shape; it stays 200 even while the server drains.
type Health struct {
	Status  string `json:"status"`
	Schemas int    `json:"schemas"`
	Shards  int    `json:"shards"`
}

// Readiness is the body answering GET /readyz — whether the server
// should receive new traffic, with the admission queue's state. While
// draining (graceful shutdown) the endpoint answers 503 so load
// balancers stop routing before in-flight matches are killed.
type Readiness struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Draining is true once graceful shutdown began.
	Draining bool `json:"draining"`
	// Queued is the number of match requests waiting for a slot.
	Queued int `json:"queued"`
	// InFlight is the number of match requests currently executing.
	InFlight int `json:"inFlight"`
	// Workers is the admission semaphore's size.
	Workers int `json:"workers"`
	// QueueLimit is the admission queue bound (0 = unbounded).
	QueueLimit int `json:"queueLimit"`
	// CandidateIndex reports the candidate-pruning index state; absent
	// when the backend matches exhaustively only.
	CandidateIndex *IndexReadiness `json:"candidateIndex,omitempty"`
	// Recovery reports what each shard's log replay found at startup;
	// absent when the backend has no durable store.
	Recovery []RecoveryStatus `json:"recovery,omitempty"`
	// PageCache reports the repository buffer pool's state (summed
	// across shards); absent when the backend has no paged store.
	PageCache *PageCacheStatus `json:"pageCache,omitempty"`
	// WarmStart reports the startup warm-restore outcome; absent when
	// the backend never restores warm state.
	WarmStart *WarmStartStatus `json:"warmStart,omitempty"`
}

// PageCacheStatus is the page buffer pool block of /readyz: capacity
// and residency plus cumulative traffic, summed across shards.
type PageCacheStatus struct {
	// Capacity is the pool bound in pages (summed over shard pools).
	Capacity int `json:"capacity"`
	// Resident is the number of pages currently cached.
	Resident int `json:"resident"`
	// Pinned is the number of pages currently pinned by readers.
	Pinned int `json:"pinned"`
	// Hits counts page requests served from the pool.
	Hits uint64 `json:"hits"`
	// Misses counts page requests that read from disk.
	Misses uint64 `json:"misses"`
	// Evictions counts pages evicted to admit others.
	Evictions uint64 `json:"evictions"`
}

// WarmStartStatus is the warm-restart block of /readyz: whether the
// last open found and used a warm sidecar, and how much state it
// seeded.
type WarmStartStatus struct {
	// Attempted reports a sidecar file was present at open.
	Attempted bool `json:"attempted"`
	// Used reports the sidecar passed validation (CRC and
	// auxiliary-source fingerprints) and restoring ran.
	Used bool `json:"used"`
	// RestoredSchemas counts schema analyses seeded warm.
	RestoredSchemas int `json:"restoredSchemas"`
	// DiscardedSchemas counts sidecar entries rejected individually.
	DiscardedSchemas int `json:"discardedSchemas"`
	// Columns counts persistent similarity columns seeded.
	Columns int `json:"columns"`
}

// RecoveryStatus is one shard's startup-recovery block of /readyz.
type RecoveryStatus struct {
	// Shard is the shard index (0 for a single-log repository).
	Shard int `json:"shard"`
	// Path is the shard's log file.
	Path string `json:"path"`
	// Recovered counts records replayed into the store.
	Recovered int `json:"recovered"`
	// SkippedBytes is the damaged mid-log byte count salvage skipped.
	SkippedBytes int64 `json:"skippedBytes,omitempty"`
	// TruncatedBytes is the torn tail discarded after the last valid
	// record.
	TruncatedBytes int64 `json:"truncatedBytes,omitempty"`
	// Salvaged reports that damage forced a full salvage rewrite.
	Salvaged bool `json:"salvaged,omitempty"`
	// UpgradedV1 reports a legacy version-1 log was upgraded.
	UpgradedV1 bool `json:"upgradedV1,omitempty"`
	// CheckpointUsed reports replay started from a checkpoint snapshot.
	CheckpointUsed bool `json:"checkpointUsed,omitempty"`
	// CheckpointDamaged reports a corrupt checkpoint was salvaged.
	CheckpointDamaged bool `json:"checkpointDamaged,omitempty"`
	// Clean reports the log was fully intact.
	Clean bool `json:"clean"`
}

// IndexReadiness is the candidate-pruning index block of /readyz.
type IndexReadiness struct {
	// Schemas is the number of schemas indexed, summed over segments.
	Schemas int `json:"schemas"`
	// Postings is the total posting-list entry count over segments.
	Postings int `json:"postings"`
	// LastPruneRatio is the fraction of candidates skipped by the most
	// recent pruned match batch (0 until one runs). Last-write-wins
	// under concurrent matches — kept for compatibility; read the
	// cumulative fields below for stable signals.
	LastPruneRatio float64 `json:"lastPruneRatio"`
	// PrunedTotal is the cumulative number of candidates skipped by
	// pruning across all batches since startup.
	PrunedTotal uint64 `json:"prunedTotal"`
	// ConsideredTotal is the cumulative number of candidates considered
	// by pruned batches since startup; PrunedTotal/ConsideredTotal is
	// the load-stable prune ratio.
	ConsideredTotal uint64 `json:"consideredTotal"`
	// PruneRatio is the cumulative prune ratio (0 until a pruned batch
	// runs).
	PruneRatio float64 `json:"pruneRatio"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseSchema imports an inline schema payload through the same
// format dispatcher as coma.LoadFile (importer.ParseAs), which also
// rejects schemas without any element path — an empty schema can
// neither be matched nor serve as a match candidate.
func ParseSchema(p SchemaPayload) (*schema.Schema, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("server: schema payload without a name")
	}
	if p.Format == "" {
		return nil, fmt.Errorf("server: inline schema %q without a format", p.Name)
	}
	return importer.ParseAs(p.Name, p.Format, []byte(p.Source))
}

// WireMapping converts a mapping into its wire correspondences.
func WireMapping(m *simcube.Mapping) []Correspondence {
	cs := m.Correspondences()
	out := make([]Correspondence, len(cs))
	for i, c := range cs {
		out[i] = Correspondence{From: c.From, To: c.To, Sim: c.Sim}
	}
	return out
}
