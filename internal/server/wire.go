package server

import (
	"fmt"

	"repro/internal/importer"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// SchemaPayload names a schema over the wire: either a reference to a
// stored schema (Name only) or an inline schema (Name plus Format and
// Source), imported server-side with the same dispatch as
// coma.LoadFile.
type SchemaPayload struct {
	// Name is the schema name — of a stored schema when Source is
	// empty, of the inline schema otherwise.
	Name string `json:"name"`
	// Format selects the importer for Source: sql, ddl, xsd, xml, json
	// or dtd (a leading dot is accepted, so file extensions pass
	// through unchanged).
	Format string `json:"format,omitempty"`
	// Source is the schema document text; empty means Name references a
	// stored schema.
	Source string `json:"source,omitempty"`
}

// Inline reports whether the payload carries an inline schema source.
func (p SchemaPayload) Inline() bool { return p.Source != "" }

// MatchRequest is the body of POST /match: match the given schema —
// inline or stored — against every schema in the repository.
type MatchRequest struct {
	Schema SchemaPayload `json:"schema"`
	// TopK keeps only the K best candidates (0 = all).
	TopK int `json:"topK,omitempty"`
}

// Correspondence is one element correspondence of a wire mapping.
type Correspondence struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Sim  float64 `json:"sim"`
}

// MatchCandidate is one ranked outcome of a match request.
type MatchCandidate struct {
	// Schema is the stored candidate's name.
	Schema string `json:"schema"`
	// SchemaSim is the combined schema similarity of the pair.
	SchemaSim float64 `json:"schemaSim"`
	// Correspondences is the selected mapping, incoming-side first.
	Correspondences []Correspondence `json:"correspondences"`
}

// MatchResponse is the body answering POST /match: stored candidates
// ranked by descending combined schema similarity.
type MatchResponse struct {
	Incoming   string           `json:"incoming"`
	Candidates []MatchCandidate `json:"candidates"`
}

// SchemaInfo summarizes one stored schema.
type SchemaInfo struct {
	Name  string `json:"name"`
	Paths int    `json:"paths"`
}

// SchemasResponse is the body answering GET /schemas.
type SchemasResponse struct {
	Schemas []SchemaInfo `json:"schemas"`
}

// SchemaDetail is the body answering GET /schemas/{name}: the stored
// schema's path enumeration, the element vocabulary matchers score.
type SchemaDetail struct {
	Name  string   `json:"name"`
	Paths []string `json:"paths"`
}

// Health is the body answering GET /healthz.
type Health struct {
	Status  string `json:"status"`
	Schemas int    `json:"schemas"`
	Shards  int    `json:"shards"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseSchema imports an inline schema payload through the same
// format dispatcher as coma.LoadFile (importer.ParseAs), which also
// rejects schemas without any element path — an empty schema can
// neither be matched nor serve as a match candidate.
func ParseSchema(p SchemaPayload) (*schema.Schema, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("server: schema payload without a name")
	}
	if p.Format == "" {
		return nil, fmt.Errorf("server: inline schema %q without a format", p.Name)
	}
	return importer.ParseAs(p.Name, p.Format, []byte(p.Source))
}

// WireMapping converts a mapping into its wire correspondences.
func WireMapping(m *simcube.Mapping) []Correspondence {
	cs := m.Correspondences()
	out := make([]Correspondence, len(cs))
	for i, c := range cs {
		out[i] = Correspondence{From: c.From, To: c.To, Sim: c.Sim}
	}
	return out
}
