package analysis_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/strutil"
	"repro/internal/workload"
)

func defaultSources() analysis.Sources {
	return analysis.Sources{
		Dict:     dict.Default(),
		Types:    dict.DefaultTypeTable(),
		Taxonomy: dict.DefaultTaxonomy(),
	}
}

// randomName draws a plausible element name: camel-cased fragments
// mixing dictionary vocabulary, abbreviations, and noise.
func randomName(rng *rand.Rand) string {
	vocab := []string{
		"ship", "deliver", "bill", "invoice", "city", "town", "zip", "street",
		"customer", "supplier", "po", "qty", "amt", "no", "num", "addr",
		"contact", "phone", "price", "total", "order", "item", "unit",
		"Xq", "zzz", "foo", "HTTP", "q9", "", "A",
	}
	n := 1 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		w := vocab[rng.Intn(len(vocab))]
		if len(w) > 0 && rng.Intn(2) == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		b.WriteString(w)
	}
	return b.String()
}

// randomSchema builds a random three-level schema over random names.
func randomSchema(rng *rand.Rand, name string) *schema.Schema {
	s := schema.New(name)
	types := []string{"VARCHAR(200)", "INT", "xsd:decimal", "DATE", "", "bool", "mystery"}
	for t := 0; t < 2+rng.Intn(3); t++ {
		top := schema.NewNode(randomName(rng) + fmt.Sprint(t))
		for c := 0; c < rng.Intn(4); c++ {
			mid := schema.NewNode(randomName(rng))
			mid.TypeName = types[rng.Intn(len(types))]
			if rng.Intn(3) == 0 {
				for l := 0; l < 1+rng.Intn(3); l++ {
					leaf := schema.NewNode(randomName(rng))
					leaf.TypeName = types[rng.Intn(len(types))]
					mid.AddChild(leaf)
				}
			}
			top.AddChild(mid)
		}
		s.Root.AddChild(top)
	}
	return s
}

// TestIndexStructureAgreesWithPaths is the structural property test:
// every dense enumeration of the index agrees with the direct
// schema.Path computation.
func TestIndexStructureAgreesWithPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schemas := []*schema.Schema{}
	for i := 0; i < 20; i++ {
		schemas = append(schemas, randomSchema(rng, fmt.Sprintf("R%d", i)))
	}
	schemas = append(schemas, workload.Schemas()...)
	src := defaultSources()
	for _, s := range schemas {
		x := analysis.NewIndex(s, src)
		paths := s.Paths()
		if len(x.Paths) != len(paths) {
			t.Fatalf("%s: %d paths indexed, want %d", s.Name, len(x.Paths), len(paths))
		}
		for i, p := range paths {
			if x.Keys[i] != p.String() {
				t.Fatalf("%s: key[%d] = %q, want %q", s.Name, i, x.Keys[i], p.String())
			}
			if x.IsLeaf[i] != p.Leaf().IsLeaf() {
				t.Fatalf("%s: IsLeaf[%d] mismatch", s.Name, i)
			}
			// Parent agrees with the path prefix.
			if parent, ok := p.Parent(); ok {
				pi := x.Parent[i]
				if pi < 0 || !paths[pi].Equal(parent) {
					t.Fatalf("%s: parent of %q wrong", s.Name, p)
				}
			} else if x.Parent[i] != -1 {
				t.Fatalf("%s: top-level %q has parent %d", s.Name, p, x.Parent[i])
			}
			// Children agree with ChildPaths.
			want := p.ChildPaths()
			if len(x.Children[i]) != len(want) {
				t.Fatalf("%s: %q has %d children, want %d", s.Name, p, len(x.Children[i]), len(want))
			}
			for k, ci := range x.Children[i] {
				if !paths[ci].Equal(want[k]) {
					t.Fatalf("%s: child %d of %q wrong", s.Name, k, p)
				}
			}
			// Leaf sets agree with LeafPaths, in order.
			lo, hi := x.LeafSet(i)
			wantLeaves := p.LeafPaths()
			if hi-lo != len(wantLeaves) {
				t.Fatalf("%s: %q leaf set size %d, want %d", s.Name, p, hi-lo, len(wantLeaves))
			}
			for k, lp := range wantLeaves {
				if !paths[x.Leaves[lo+k]].Equal(lp) {
					t.Fatalf("%s: leaf %d of %q wrong", s.Name, k, p)
				}
			}
			// Generic type classes agree with the type table.
			if x.Generic[i] != src.Types.Generic(p.Leaf().TypeName) {
				t.Fatalf("%s: generic class of %q wrong", s.Name, p)
			}
			// PathIndex resolves the key back (first occurrence wins).
			if j := x.PathIndex(x.Keys[i]); j < 0 || x.Keys[j] != x.Keys[i] {
				t.Fatalf("%s: PathIndex(%q) = %d", s.Name, x.Keys[i], j)
			}
		}
	}
}

// TestIndexProfilesAgreeWithStrutil checks that the index's name
// profiles are exactly the profiles a direct strutil analysis yields:
// same token sets, normal forms, gram multisets and Soundex codes.
func TestIndexProfilesAgreeWithStrutil(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := defaultSources()
	for round := 0; round < 10; round++ {
		s := randomSchema(rng, fmt.Sprintf("P%d", round))
		x := analysis.NewIndex(s, src)
		for i, p := range x.Paths {
			for _, pair := range []struct {
				got  *strutil.NameProfile
				name string
			}{
				{x.NameProfile(i), p.Name()},
				{x.LongNameProfile(i), strings.Join(p.Names(), ".")},
			} {
				want := strutil.NewNameProfile(pair.name, src.Dict.Expand, 2, 3)
				if pair.got.Name != want.Name {
					t.Fatalf("profile name %q, want %q", pair.got.Name, want.Name)
				}
				if strings.Join(pair.got.Tokens, "|") != strings.Join(want.Tokens, "|") {
					t.Fatalf("%q: tokens %v, want %v", pair.name, pair.got.Tokens, want.Tokens)
				}
				for k, tp := range pair.got.Profiles {
					wp := want.Profiles[k]
					if tp.Norm != wp.Norm || tp.Code != wp.Code {
						t.Fatalf("%q token %q: norm/code mismatch", pair.name, tp.Token)
					}
					for _, n := range []int{2, 3} {
						if strings.Join(tp.Grams(n), "|") != strings.Join(wp.Grams(n), "|") {
							t.Fatalf("%q token %q: %d-grams mismatch", pair.name, tp.Token, n)
						}
					}
				}
			}
		}
	}
}

// TestDictHitSetsAgreeWithLookup is the dictionary property test: for
// randomized token pairs, intersecting the precomputed hit-sets gives
// exactly dict.Dictionary.Lookup, and chain intersection gives exactly
// dict.Taxonomy.Sim.
func TestDictHitSetsAgreeWithLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := dict.Default()
	tax := dict.DefaultTaxonomy()
	dx := d.Analyze()
	tx := tax.Analyze()

	terms := d.Terms()
	pool := append([]string{}, terms...)
	pool = append(pool, "street", "city", "vendor", "unknownterm", "zz9", "measure", "party", "")
	for i := 0; i < 5000; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]

		// Dictionary: equal terms are the caller's fast path; distinct
		// terms resolve through the id hit-sets.
		var got float64
		if a == b {
			if a != "" {
				got = 1
			}
		} else {
			ida, idb := dx.TermID(a), dx.TermID(b)
			if ida >= 0 && idb >= 0 {
				got = strutil.LookupIDSim(dx.Relations(ida), idb)
			}
		}
		if want := d.Lookup(a, b); got != want {
			t.Fatalf("hit-set Lookup(%q, %q) = %v, dictionary says %v", a, b, got, want)
		}

		// Taxonomy: identical terms short-circuit to 1, others through
		// chain intersection.
		var tgot float64
		if a == b {
			if a != "" {
				tgot = 1
			}
		} else {
			tgot = dict.ChainSim(tx.Decay(), tx.Chain(a), tx.Chain(b))
		}
		if a == "" || b == "" {
			tgot = 0
		}
		if twant := tax.Sim(a, b); tgot != twant {
			t.Fatalf("chain Sim(%q, %q) = %v, taxonomy says %v", a, b, tgot, twant)
		}
	}
}

// TestAnalyzerCachesAndInvalidates covers the once-per-schema
// lifecycle: same schema and sources hit the cache, changed sources or
// a re-enumerated schema rebuild.
func TestAnalyzerCachesAndInvalidates(t *testing.T) {
	a := analysis.NewAnalyzer()
	src := defaultSources()
	s := workload.Schemas()[0]
	x1 := a.Index(s, src)
	if x2 := a.Index(s, src); x2 != x1 {
		t.Error("same schema+sources should hit the cache")
	}
	// Different sources rebuild.
	other := src
	other.Dict = dict.Default()
	if x3 := a.Index(s, other); x3 == x1 {
		t.Error("changed sources must rebuild the index")
	}
	// Structural modification + Invalidate rebuilds.
	s2 := randomSchema(rand.New(rand.NewSource(1)), "Mut")
	y1 := a.Index(s2, src)
	s2.Root.AddChild(schema.NewNode("extra"))
	s2.Invalidate()
	y2 := a.Index(s2, src)
	if y2 == y1 {
		t.Error("stale path enumeration must rebuild the index")
	}
	if len(y2.Paths) != len(y1.Paths)+1 {
		t.Errorf("rebuilt index has %d paths, want %d", len(y2.Paths), len(y1.Paths)+1)
	}
	a.Invalidate(nil)
	if x4 := a.Index(s, src); x4 == x1 {
		t.Error("Invalidate(nil) should drop all cached indexes")
	}
}

// TestIndexSharedFragments checks the dense enumerations on a schema
// with a shared fragment (one node, two containment chains).
func TestIndexSharedFragments(t *testing.T) {
	s := schema.New("Shared")
	addr := schema.NewNode("Address")
	for _, n := range []string{"street", "city"} {
		leaf := schema.NewNode(n)
		leaf.TypeName = "VARCHAR(10)"
		addr.AddChild(leaf)
	}
	ship := schema.NewNode("ShipTo")
	bill := schema.NewNode("BillTo")
	ship.AddChild(addr)
	bill.AddChild(addr)
	s.Root.AddChild(ship)
	s.Root.AddChild(bill)

	x := analysis.NewIndex(s, defaultSources())
	if len(x.Paths) != 8 {
		t.Fatalf("paths = %d, want 8 (shared fragment expands per chain)", len(x.Paths))
	}
	if len(x.Leaves) != 4 {
		t.Fatalf("leaves = %d, want 4", len(x.Leaves))
	}
	lo, hi := x.LeafSet(x.PathIndex("ShipTo"))
	if hi-lo != 2 {
		t.Fatalf("ShipTo leaf set = %d, want 2", hi-lo)
	}
	// The same node reached via BillTo is a distinct element (path).
	if x.PathIndex("BillTo.Address.city") < 0 {
		t.Fatal("missing shared-fragment path under BillTo")
	}
}

// TestSourceMutationInvalidates pins the staleness guard: mutating a
// dictionary or taxonomy IN PLACE (same pointers) must invalidate
// cached indexes, so an engine reused across Match calls never serves
// hit-sets that predate the mutation.
func TestSourceMutationInvalidates(t *testing.T) {
	a := analysis.NewAnalyzer()
	src := defaultSources()
	s := workload.Schemas()[0]
	x1 := a.Index(s, src)
	src.Dict.AddSynonym("warehouse", "depot")
	x2 := a.Index(s, src)
	if x2 == x1 {
		t.Fatal("in-place dictionary mutation must rebuild the index")
	}
	src.Taxonomy.SetDecay(0.5)
	x3 := a.Index(s, src)
	if x3 == x2 {
		t.Fatal("in-place taxonomy mutation must rebuild the index")
	}
	src.Types.MapName("mystery", dict.GenString)
	if a.Index(s, src) == x3 {
		t.Fatal("in-place type table mutation must rebuild the index")
	}
	// And the fresh index carries the new relationship.
	x4 := a.Index(s, src)
	dx := src.Dict.Analyze()
	wid, did := dx.TermID("warehouse"), dx.TermID("depot")
	if wid < 0 || did < 0 || strutil.LookupIDSim(dx.Relations(wid), did) != 1 {
		t.Fatal("rebuilt snapshot must contain the new synonym")
	}
	_ = x4
}

// TestDictAnalyzeSnapshotCached pins the once-per-version snapshot:
// repeated Analyze calls on an unmutated dictionary return the same
// object; a mutation produces a fresh one.
func TestDictAnalyzeSnapshotCached(t *testing.T) {
	d := dict.Default()
	a, b := d.Analyze(), d.Analyze()
	if a != b {
		t.Error("Analyze should cache its snapshot per version")
	}
	d.AddAbbreviation("xyz", "xylophone")
	if d.Analyze() == a {
		t.Error("mutation must produce a fresh snapshot")
	}
}

// TestInvalidateCatchesInPlaceEdit is the regression test for the
// schema mutation version: an in-place node edit that keeps the path
// COUNT identical (a rename) must still rebuild the cached index after
// Schema.Invalidate — the staleness check rides the mutation counter,
// not the enumeration's shape.
func TestInvalidateCatchesInPlaceEdit(t *testing.T) {
	a := analysis.NewAnalyzer()
	src := defaultSources()
	s := schema.New("Edit")
	leaf := schema.NewNode("customer")
	leaf.TypeName = "VARCHAR(40)"
	s.Root.AddChild(leaf)
	x1 := a.Index(s, src)
	if got := x1.Names[x1.NameID[0]].Name; got != "customer" {
		t.Fatalf("indexed name = %q", got)
	}
	leaf.Name = "supplier" // same path count, different content
	s.Invalidate()
	x2 := a.Index(s, src)
	if x2 == x1 {
		t.Fatal("in-place rename + Invalidate must rebuild the index")
	}
	if got := x2.Names[x2.NameID[0]].Name; got != "supplier" {
		t.Errorf("rebuilt index still analyzes %q", got)
	}
	// Without an intervening Invalidate the rebuilt index stays cached.
	if a.Index(s, src) != x2 {
		t.Error("unchanged schema must hit the cache")
	}
}

// TestAnalyzerPinEvict covers the lifetime split between stored and
// transient schemas: Evict drops an unpinned entry, leaves a pinned
// one, and Release makes it evictable again. Invalidate keeps pins
// while dropping the stale index.
func TestAnalyzerPinEvict(t *testing.T) {
	a := analysis.NewAnalyzer()
	src := defaultSources()
	stored, inline := workload.Schemas()[0], workload.Schemas()[1]

	a.Pin(stored)
	x1 := a.Index(stored, src)
	a.Index(inline, src)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
	if !a.Pinned(stored) || a.Pinned(inline) {
		t.Fatal("pin state wrong")
	}
	if !a.Evict(inline) {
		t.Error("evicting a transient entry must report true")
	}
	if a.Evict(stored) {
		t.Error("evicting a pinned entry must be refused")
	}
	if a.Len() != 1 {
		t.Fatalf("Len after eviction = %d, want 1", a.Len())
	}
	if a.Index(stored, src) != x1 {
		t.Error("pinned index must survive eviction untouched")
	}

	// Invalidate drops the pinned schema's index but keeps the pin.
	a.Invalidate(stored)
	if a.Len() != 0 {
		t.Fatalf("Len after Invalidate = %d, want 0", a.Len())
	}
	if !a.Pinned(stored) {
		t.Error("Invalidate must not drop pins")
	}
	x2 := a.Index(stored, src)
	if x2 == x1 {
		t.Error("Invalidate must force a rebuild")
	}
	if a.Evict(stored) {
		t.Error("rebuilt pinned entry must still refuse eviction")
	}

	// Release makes the entry transient again.
	a.Release(stored)
	if a.Pinned(stored) {
		t.Error("Release must clear the pin")
	}
	if !a.Evict(stored) {
		t.Error("released entry must evict")
	}
	if a.Len() != 0 {
		t.Errorf("Len = %d, want 0", a.Len())
	}
}

// TestAnalyzerLimitLRU covers the capacity backstop: beyond the limit
// the least recently used unpinned indexes are evicted; pinned entries
// neither count toward the limit nor get evicted.
func TestAnalyzerLimitLRU(t *testing.T) {
	a := analysis.NewAnalyzerWithLimit(2)
	src := defaultSources()
	rng := rand.New(rand.NewSource(7))
	pinned := randomSchema(rng, "Pinned")
	s1 := randomSchema(rng, "S1")
	s2 := randomSchema(rng, "S2")
	s3 := randomSchema(rng, "S3")

	a.Pin(pinned)
	px := a.Index(pinned, src)
	x1 := a.Index(s1, src)
	a.Index(s2, src)
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (pinned exempt from the bound)", a.Len())
	}
	// Touch s1 so s2 is the LRU victim when s3 arrives.
	if a.Index(s1, src) != x1 {
		t.Fatal("s1 must still be cached")
	}
	a.Index(s3, src)
	if a.Len() != 3 {
		t.Fatalf("Len after overflow = %d, want 3", a.Len())
	}
	if a.Index(pinned, src) != px {
		t.Error("pinned entry must survive LRU pressure")
	}
	if a.Index(s1, src) != x1 {
		t.Error("recently used entry must survive LRU pressure")
	}
	// s2 was evicted: indexing it again builds afresh (observable as a
	// new pointer) and in turn evicts the then-LRU entry, keeping the
	// unpinned population at the limit.
	a.Index(s2, src)
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3", a.Len())
	}
}
