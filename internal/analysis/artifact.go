package analysis

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/schema"
	"repro/internal/strutil"
)

// Index artifacts persist the expensive half of a SchemaIndex — the
// distinct-name analysis: token sets (dictionary expansion included)
// and per-token dictionary/taxonomy annotations. Structural arrays,
// normalized forms, Soundex codes and n-gram multisets are all
// deterministic functions of the schema and the token strings, so
// RestoreIndex recomputes them and the restored index is bit-identical
// to a fresh NewIndex against sources with equal content. The caller
// owns cross-process validity: an artifact is only as good as the
// sources it was exported under, so restores must be gated on source
// fingerprints (dict.Fingerprint) and on the schema bytes it was
// exported for.

// artifactVersion is the encoding version; decoders reject others.
const artifactVersion = 1

type artEncoder struct{ buf []byte }

func (e *artEncoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *artEncoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *artEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *artEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

type artDecoder struct {
	buf []byte
	off int
	err error
}

func (d *artDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("analysis: artifact: truncated %s at offset %d", what, d.off)
	}
}

func (d *artDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *artDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *artDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *artDecoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func encodeProfile(e *artEncoder, np *strutil.NameProfile) {
	e.str(np.Name)
	e.uvarint(uint64(len(np.Tokens)))
	for i, tok := range np.Tokens {
		e.str(tok)
		tp := np.Profiles[i]
		e.varint(int64(tp.DictID))
		e.uvarint(uint64(len(tp.DictRel)))
		for _, r := range tp.DictRel {
			e.varint(int64(r.ID))
			e.f64(r.Sim)
		}
		e.uvarint(uint64(len(tp.TaxChain)))
		for _, id := range tp.TaxChain {
			e.varint(int64(id))
		}
	}
}

// maxArtifactSlice bounds decoded slice lengths so a corrupt count
// cannot drive an allocation by itself; real counts are far below it.
const maxArtifactSlice = 1 << 24

func decodeProfile(d *artDecoder, src Sources) *strutil.NameProfile {
	name := d.str()
	nTok := d.uvarint()
	if d.err != nil || nTok > maxArtifactSlice {
		d.fail("token count")
		return nil
	}
	np := &strutil.NameProfile{
		Name:     name,
		Tokens:   make([]string, 0, nTok),
		Profiles: make([]*strutil.TokenProfile, 0, nTok),
	}
	for t := uint64(0); t < nTok && d.err == nil; t++ {
		tok := d.str()
		tp := strutil.NewTokenProfile(tok, profiledGramNs...)
		dictID := int32(d.varint())
		nRel := d.uvarint()
		if nRel > maxArtifactSlice {
			d.fail("relation count")
			return nil
		}
		var rel []strutil.IDSim
		for r := uint64(0); r < nRel && d.err == nil; r++ {
			id := int32(d.varint())
			rel = append(rel, strutil.IDSim{ID: id, Sim: d.f64()})
		}
		nChain := d.uvarint()
		if nChain > maxArtifactSlice {
			d.fail("chain count")
			return nil
		}
		var chain []int32
		for c := uint64(0); c < nChain && d.err == nil; c++ {
			chain = append(chain, int32(d.varint()))
		}
		// Annotations tag the live source instances, exactly as a fresh
		// build would; with a source absent its annotations stay unset.
		if src.Dict != nil {
			tp.DictSrc = src.Dict
			tp.DictID = dictID
			tp.DictRel = rel
		}
		if src.Taxonomy != nil {
			tp.TaxSrc = src.Taxonomy
			tp.TaxChain = chain
		}
		np.Tokens = append(np.Tokens, tok)
		np.Profiles = append(np.Profiles, tp)
	}
	if d.err != nil {
		return nil
	}
	return np
}

// ExportIndex serializes the distinct-name analysis of x for
// warm-restart persistence.
func ExportIndex(x *SchemaIndex) []byte {
	e := &artEncoder{buf: make([]byte, 0, 256)}
	e.uvarint(artifactVersion)
	e.uvarint(uint64(len(x.Names)))
	for _, np := range x.Names {
		encodeProfile(e, np)
	}
	e.uvarint(uint64(len(x.LongNames)))
	for _, np := range x.LongNames {
		encodeProfile(e, np)
	}
	return e.buf
}

// RestoreIndex rebuilds a SchemaIndex for s against src from a
// persisted artifact, recomputing structural arrays from the schema
// and reusing the artifact's name analysis. Names the artifact does
// not cover (it was exported for a different schema revision) are
// analyzed fresh, so the result is always a correct, Valid index; the
// only thing lost to a partial artifact is warmth. A malformed
// artifact is an error and restores nothing.
func RestoreIndex(s *schema.Schema, src Sources, data []byte) (*SchemaIndex, error) {
	d := &artDecoder{buf: data}
	if v := d.uvarint(); d.err == nil && v != artifactVersion {
		return nil, fmt.Errorf("analysis: artifact version %d, want %d", v, artifactVersion)
	}
	decodeSet := func() map[string]*strutil.NameProfile {
		n := d.uvarint()
		if d.err != nil || n > maxArtifactSlice {
			d.fail("profile count")
			return nil
		}
		m := make(map[string]*strutil.NameProfile, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			if np := decodeProfile(d, src); np != nil {
				m[np.Name] = np
			}
		}
		return m
	}
	names := decodeSet()
	longs := decodeSet()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("analysis: artifact has %d trailing bytes", len(data)-d.off)
	}
	return buildIndex(s, src,
		func(name string) (*strutil.NameProfile, *strutil.TokenProfile) {
			if np, ok := names[name]; ok {
				return np, strutil.NewTokenProfile(name, profiledGramNs...)
			}
			return nil, nil
		},
		func(long string) *strutil.NameProfile {
			return longs[long]
		}), nil
}
