// Package analysis implements the shared per-schema analysis layer of
// the match engine: everything about one schema that every matcher
// used to re-derive per pair of schemas is computed exactly once per
// schema and shared by all consumers (the hybrid matchers, the
// instance and flooding matchers, the reuse matchers, and the
// evaluation harness).
//
// COMA's match operation (Do & Rahm, VLDB 2002, Section 3) executes k
// independent matchers over the same pair of schemas, and the reuse
// scenario of Section 5 matches the same repository schema against
// many incoming schemas. Both workloads repeat the same per-schema
// work — path enumeration, name tokenization and expansion, n-gram
// and Soundex extraction, dictionary and taxonomy lookups, data type
// classification — once per matcher execution. A SchemaIndex hoists
// all of it into a single analysis pass, in the "pre-analyze once,
// combine flexibly" discipline of rewriting-based query answering
// systems that amortize schema reasoning across queries.
//
// # Lifecycle
//
// A SchemaIndex is built once per (schema, sources) pair — by
// NewIndex directly, or through an Analyzer that caches one index per
// schema — and is immutable afterwards: it may be shared freely
// between goroutines and across repeated Match calls. The index
// captures the schema's path enumeration and the auxiliary sources
// (dictionary, taxonomy, type table) at build time, together with the
// sources' mutation versions; structurally modifying the schema
// (followed by schema.Invalidate), swapping a source instance, or
// mutating a source in place (a new synonym, a remapped type name)
// all make Valid report false, and Analyzer.Index transparently
// rebuilds. Hand-held indexes must be rebuilt by their owner. None of
// this may happen while a match is running.
//
// Every precomputed artifact mirrors a direct computation bit for
// bit: profile-based n-gram/Soundex/edit similarities equal their
// string counterparts, dictionary hit-set intersections equal
// dict.Dictionary.Lookup, taxonomy chain intersections equal
// dict.Taxonomy.Sim, and generic type classes equal
// dict.TypeTable.Generic. Matchers therefore produce bit-identical
// matrices with and without an index; only the time to produce them
// changes.
package analysis

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/strutil"
)

// profiledGramNs are the n-gram widths precomputed for every name
// profile in an index: the widths of the library's Digram and Trigram
// matchers. Matchers needing other widths build their own profiles.
var profiledGramNs = []int{2, 3}

// ProfiledGramNs reports whether every width in ns is precomputed by
// the index's name profiles.
func ProfiledGramNs(ns []int) bool {
	for _, n := range ns {
		if n != 2 && n != 3 {
			return false
		}
	}
	return true
}

// Sources identifies the auxiliary information sources an index is
// built against. The struct is comparable: two Sources are the same
// iff they reference the same dictionary, type table and taxonomy
// instances, which is how caches decide whether an index is still
// valid for a context. Nil fields disable the respective source.
type Sources struct {
	Dict     *dict.Dictionary
	Types    *dict.TypeTable
	Taxonomy *dict.Taxonomy
}

// defaultTypes classifies declared types when Sources.Types is nil,
// matching the match package's fallback table (the instances differ,
// the classifications do not).
var defaultTypes = dict.DefaultTypeTable()

func (src Sources) types() *dict.TypeTable {
	if src.Types == nil {
		return defaultTypes
	}
	return src.Types
}

func (src Sources) expand(tok string) []string {
	if src.Dict == nil {
		return nil
	}
	return src.Dict.Expand(tok)
}

// SchemaIndex is the analysis of one schema: dense path and element
// enumerations plus every per-element artifact the matchers consume.
// Build with NewIndex or Analyzer.Index; immutable afterwards (all
// exported slices are shared — do not modify).
type SchemaIndex struct {
	// Schema is the analyzed schema.
	Schema *schema.Schema
	// Src records the auxiliary sources the index was built against.
	Src Sources

	// Paths is the schema's path enumeration (Schema.Paths order,
	// preorder); every other per-path slice is parallel to it.
	Paths []schema.Path
	// Keys holds the dotted string form of every path: the matrix keys
	// of all matchers.
	Keys []string
	// Parent maps each path to the index of its parent path, or -1 for
	// top-level paths.
	Parent []int
	// Children maps each path to the indices of its containment child
	// paths, in declaration order.
	Children [][]int
	// IsLeaf marks paths whose terminal node has no children.
	IsLeaf []bool
	// Leaves enumerates the leaf paths densely: Leaves[d] is the path
	// index of the d-th leaf in preorder.
	Leaves []int
	// LeafLo/LeafHi bound each path's leaf set: the leaves reachable
	// from path i are exactly Leaves[LeafLo[i]:LeafHi[i]], in the
	// DFS order of Path.LeafPaths. (Preorder makes every subtree's
	// leaf set a contiguous run of dense leaf ids.)
	LeafLo []int
	LeafHi []int
	// Generic classifies each path's declared type against the
	// sources' type table.
	Generic []dict.GenericType

	// NameID maps each path to its dense distinct-element-name id;
	// Names[NameID[i]] is the analyzed profile of Paths[i].Name().
	// Matchers fill one distinct-name similarity grid and project it
	// onto the path matrix instead of re-scoring duplicate names.
	NameID []int
	// Names holds one annotated NameProfile per distinct element name,
	// in order of first appearance.
	Names []*strutil.NameProfile
	// RawNames holds one TokenProfile of the raw (untokenized) element
	// name per distinct name, parallel to Names; the flooding
	// matcher's trigram initialization consumes it.
	RawNames []*strutil.TokenProfile
	// LongNameID / LongNames are the hierarchical-name counterparts of
	// NameID / Names: profiles of the dot-joined path names consumed
	// by the NamePath matcher.
	LongNameID []int
	LongNames  []*strutil.NameProfile

	keyIdx map[string]int
	// Source mutation counters captured at build time; Valid compares
	// them so in-place mutation of a dictionary/taxonomy/type table
	// (new synonyms, remapped type names) invalidates the index even
	// though the pointers still match.
	dictVersion, taxVersion, typesVersion int64
	// schemaVersion is the schema's mutation counter at build time;
	// Valid compares it against Schema.Version so a structural edit
	// followed by Schema.Invalidate is caught without re-enumerating
	// paths (and even when the edit leaves the path count intact).
	schemaVersion int64
}

// NewIndex analyzes a schema against the given sources. The schema's
// path enumeration is captured as-is; see the package comment for the
// lifecycle contract.
func NewIndex(s *schema.Schema, src Sources) *SchemaIndex {
	return buildIndex(s, src, nil, nil)
}

// NewIndexReusing analyzes s like NewIndex but reuses the name
// analysis of prev for element names it already profiled, provided
// prev was built against the same sources in the same state (same
// instances, same mutation versions). Structural arrays are always
// rebuilt from the schema's current enumeration, so after a small
// edit only the names the edit introduced are re-profiled — the
// incremental path Analyzer.Index takes when rebuilding a stale
// index. Profiles are immutable, so sharing them between the old and
// new index is safe.
func NewIndexReusing(s *schema.Schema, src Sources, prev *SchemaIndex) *SchemaIndex {
	if prev == nil || prev.Src != src ||
		prev.dictVersion != src.Dict.Version() ||
		prev.taxVersion != src.Taxonomy.Version() ||
		prev.typesVersion != src.Types.Version() {
		return NewIndex(s, src)
	}
	names := make(map[string]int, len(prev.Names))
	for i, np := range prev.Names {
		names[np.Name] = i
	}
	longs := make(map[string]int, len(prev.LongNames))
	for i, np := range prev.LongNames {
		longs[np.Name] = i
	}
	return buildIndex(s, src,
		func(name string) (*strutil.NameProfile, *strutil.TokenProfile) {
			if i, ok := names[name]; ok {
				return prev.Names[i], prev.RawNames[i]
			}
			return nil, nil
		},
		func(long string) *strutil.NameProfile {
			if i, ok := longs[long]; ok {
				return prev.LongNames[i]
			}
			return nil
		})
}

// buildIndex is the shared index construction: structural arrays are
// always derived from the schema, while distinct-name profiles come
// from lookupName/lookupLong when they yield one (profile reuse,
// warm-restart restore) and are computed fresh otherwise. nil lookups
// compute everything.
func buildIndex(s *schema.Schema, src Sources,
	lookupName func(string) (*strutil.NameProfile, *strutil.TokenProfile),
	lookupLong func(string) *strutil.NameProfile) *SchemaIndex {
	// Capture the mutation version BEFORE enumerating: an Invalidate
	// landing between the two leaves the index stamped with the older
	// version, so Valid errs toward a rebuild instead of accepting a
	// half-mutated snapshot forever.
	schemaVersion := s.Version()
	paths := s.Paths()
	n := len(paths)
	x := &SchemaIndex{
		Schema:     s,
		Src:        src,
		Paths:      paths,
		Keys:       make([]string, n),
		Parent:     make([]int, n),
		Children:   make([][]int, n),
		IsLeaf:     make([]bool, n),
		LeafLo:     make([]int, n+1),
		LeafHi:     make([]int, n),
		Generic:    make([]dict.GenericType, n),
		NameID:     make([]int, n),
		LongNameID: make([]int, n),
		keyIdx:     make(map[string]int, n),
	}

	types := src.types()
	x.schemaVersion = schemaVersion
	x.dictVersion = src.Dict.Version()
	x.taxVersion = src.Taxonomy.Version()
	x.typesVersion = src.Types.Version()
	var dictIdx *dict.Index
	if src.Dict != nil {
		// Analyze caches its snapshot per dictionary version, so
		// indexing many schemas against one dictionary interns it once.
		dictIdx = src.Dict.Analyze()
	}
	var taxIdx *dict.TaxIndex
	if src.Taxonomy != nil {
		taxIdx = src.Taxonomy.Analyze()
	}
	annotate := func(tp *strutil.TokenProfile) {
		if dictIdx != nil {
			tp.DictSrc = src.Dict
			tp.DictID = dictIdx.TermID(tp.Token)
			tp.DictRel = dictIdx.Relations(tp.DictID)
		}
		if taxIdx != nil {
			tp.TaxSrc = src.Taxonomy
			tp.TaxChain = taxIdx.Chain(tp.Token)
		}
	}

	nameIDs := make(map[string]int)
	longIDs := make(map[string]int)
	// stack[d] is the path index of the current ancestor at depth d+1.
	var stack []int
	for i, p := range paths {
		key := p.String()
		x.Keys[i] = key
		x.keyIdx[key] = i
		leaf := p.Leaf()
		x.IsLeaf[i] = leaf.IsLeaf()
		x.Generic[i] = types.Generic(leaf.TypeName)

		d := p.Len()
		x.Parent[i] = -1
		if d >= 2 {
			x.Parent[i] = stack[d-2]
			x.Children[stack[d-2]] = append(x.Children[stack[d-2]], i)
		}
		if d > len(stack) {
			stack = append(stack, i)
		} else {
			stack[d-1] = i
		}

		x.LeafLo[i] = len(x.Leaves)
		if x.IsLeaf[i] {
			x.Leaves = append(x.Leaves, i)
		}

		name := leaf.Name
		id, ok := nameIDs[name]
		if !ok {
			id = len(x.Names)
			nameIDs[name] = id
			var np *strutil.NameProfile
			var rp *strutil.TokenProfile
			if lookupName != nil {
				np, rp = lookupName(name)
			}
			if np == nil {
				np = strutil.NewNameProfile(name, src.expand, profiledGramNs...)
				np.Annotate(annotate)
			}
			if rp == nil {
				rp = strutil.NewTokenProfile(name, profiledGramNs...)
			}
			x.Names = append(x.Names, np)
			x.RawNames = append(x.RawNames, rp)
		}
		x.NameID[i] = id

		long := strings.Join(p.Names(), ".")
		lid, ok := longIDs[long]
		if !ok {
			lid = len(x.LongNames)
			longIDs[long] = lid
			var lp *strutil.NameProfile
			if lookupLong != nil {
				lp = lookupLong(long)
			}
			if lp == nil {
				lp = strutil.NewNameProfile(long, src.expand, profiledGramNs...)
				lp.Annotate(annotate)
			}
			x.LongNames = append(x.LongNames, lp)
		}
		x.LongNameID[i] = lid
	}
	x.LeafLo[n] = len(x.Leaves)

	// LeafHi[i] = LeafLo[end of i's subtree]. Preorder: the subtree of
	// path i is the contiguous run of paths deeper than i that follows
	// it; scanning backwards, a stack of open subtrees resolves every
	// end index in one pass. Equivalently: walk forward and close all
	// subtrees deeper-or-equal whenever depth drops.
	var open []int // path indices whose subtree is still open
	for i, p := range paths {
		d := p.Len()
		for len(open) >= d {
			j := open[len(open)-1]
			open = open[:len(open)-1]
			x.LeafHi[j] = x.LeafLo[i]
		}
		open = append(open, i)
	}
	for _, j := range open {
		x.LeafHi[j] = len(x.Leaves)
	}
	return x
}

// PathIndex returns the index of the path with the given dotted form,
// or -1. With duplicate dotted forms (distinct nodes whose chains
// render identically) the last occurrence wins, exactly like the
// overwrite semantics of simcube.Matrix's lazily built key maps.
func (x *SchemaIndex) PathIndex(key string) int {
	if i, ok := x.keyIdx[key]; ok {
		return i
	}
	return -1
}

// NameProfile returns the analyzed element name of path i.
func (x *SchemaIndex) NameProfile(i int) *strutil.NameProfile {
	return x.Names[x.NameID[i]]
}

// LongNameProfile returns the analyzed hierarchical name of path i.
func (x *SchemaIndex) LongNameProfile(i int) *strutil.NameProfile {
	return x.LongNames[x.LongNameID[i]]
}

// LeafSet returns the dense leaf ids reachable from path i as the
// half-open range [lo, hi) into Leaves, in Path.LeafPaths DFS order.
func (x *SchemaIndex) LeafSet(i int) (lo, hi int) {
	return x.LeafLo[i], x.LeafHi[i]
}

// Valid reports whether the index still describes the schema's
// current structure (same mutation version — every structural edit
// bumps it through Schema.Invalidate) and was built against the given
// sources in their current state (same instances, same mutation
// versions). The version comparisons are side-effect free: a stale
// index is detected without re-enumerating the schema's paths.
func (x *SchemaIndex) Valid(s *schema.Schema, src Sources) bool {
	if x == nil || x.Schema != s || x.Src != src {
		return false
	}
	if x.schemaVersion != s.Version() {
		return false
	}
	return x.dictVersion == src.Dict.Version() &&
		x.taxVersion == src.Taxonomy.Version() &&
		x.typesVersion == src.Types.Version()
}

// Analyzer caches one SchemaIndex per schema so that the analysis
// cost is paid once per schema rather than once per match: across the
// k matchers of one operation, across repeated Match calls on the
// same schema (the repository/reuse scenario), and across the
// evaluation harness's whole series grid. It is safe for concurrent
// use; the zero value is not usable, construct with NewAnalyzer or
// NewAnalyzerWithLimit.
//
// # Entry lifetime
//
// By default every analyzed schema stays cached until Invalidate — the
// right policy for a fixed working set (a repository's stored schemas,
// an evaluation grid), and a leak for request-scoped schemas: a server
// matching inline uploads would retain one entry per request forever.
// Two mechanisms bound the cache:
//
//   - Pin/Release mark long-lived instances (stored schemas). Evict —
//     called by the batch scheduler for the incoming schema at batch
//     end — drops an entry unless it is pinned, so request-scoped
//     indexes die with their batch while stored ones stay warm.
//   - NewAnalyzerWithLimit adds a capacity backstop: when the number of
//     unpinned cached indexes exceeds the limit, the least recently
//     used unpinned entries are evicted. Pinned entries are exempt and
//     do not count toward the limit.
type Analyzer struct {
	mu      sync.Mutex
	entries map[*schema.Schema]*analyzerEntry
	// limit bounds the number of unpinned cached indexes (0 = no
	// bound); pinned entries are exempt.
	limit int
	// seq is the LRU clock: every Index access stamps the entry. It
	// doubles as the tombstone/batch-window clock — one monotonic
	// counter orders accesses, batch starts and deletions alike.
	seq int64
	// active holds the start stamps of the batch windows currently
	// open (BeginBatch); dead holds tombstones: schemas deleted while
	// a window was open, stamped with the deletion time. While a
	// schema is tombstoned, Index serves throwaway indexes instead of
	// caching, so an in-flight batch that captured the schema before
	// its DELETE cannot resurrect the entry by publishing after it.
	// Tombstones are reclaimed at window close: once every window
	// that predates a deletion has ended, no in-flight build can
	// still hold the schema and the tombstone is dropped.
	active map[int64]struct{}
	dead   map[*schema.Schema]int64

	// Lifecycle counters, cumulative since construction. Atomic (not
	// guarded by mu) so Stats can be read from exposition paths without
	// contending with builds; see AnalyzerStats for meanings.
	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	tombstones    atomic.Uint64
	pins          atomic.Uint64
}

// AnalyzerStats is a point-in-time snapshot of the cache's cumulative
// lifecycle counters plus its current occupancy. Counters are
// monotonic; Entries/Pinned are instantaneous.
type AnalyzerStats struct {
	// Hits counts Index calls served from a cached, still-valid index.
	Hits uint64
	// Misses counts index builds: first use, stale rebuilds, and
	// throwaway builds for tombstoned schemas.
	Misses uint64
	// Evictions counts entries dropped by Evict or the LRU capacity
	// backstop.
	Evictions uint64
	// Invalidations counts entries whose index was dropped by
	// Invalidate (wholesale Invalidate(nil) counts each entry).
	Invalidations uint64
	// Tombstones counts deletions that laid a tombstone because a batch
	// window was open (the delete/batch race being defused).
	Tombstones uint64
	// Pins counts Pin calls.
	Pins uint64
	// Entries is the number of currently cached built indexes (as Len).
	Entries int
	// Pinned is the number of currently pinned schemas.
	Pinned int
}

// Stats returns the cache's cumulative counters and current occupancy.
func (a *Analyzer) Stats() AnalyzerStats {
	st := AnalyzerStats{
		Hits:          a.hits.Load(),
		Misses:        a.misses.Load(),
		Evictions:     a.evictions.Load(),
		Invalidations: a.invalidations.Load(),
		Tombstones:    a.tombstones.Load(),
		Pins:          a.pins.Load(),
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.entries {
		if e.idx.Load() != nil {
			st.Entries++
		}
		if e.pinned {
			st.Pinned++
		}
	}
	return st
}

// analyzerEntry serializes builds per schema: concurrent Index calls
// on different schemas analyze in parallel, while calls on the same
// schema block on one build (which also guards the schema's lazy path
// enumeration against concurrent first use). The index pointer is
// atomic so map-level operations (eviction scans, Len) read it without
// taking the build lock.
type analyzerEntry struct {
	mu  sync.Mutex
	idx atomic.Pointer[SchemaIndex]
	// pinned and lastUse are guarded by Analyzer.mu.
	pinned  bool
	lastUse int64
}

// NewAnalyzer returns an empty, unbounded analysis cache.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		entries: make(map[*schema.Schema]*analyzerEntry),
		active:  make(map[int64]struct{}),
		dead:    make(map[*schema.Schema]int64),
	}
}

// NewAnalyzerWithLimit returns an analysis cache that retains at most
// limit unpinned indexes, evicting least-recently-used ones beyond
// that; limit <= 0 means unbounded. Pinned entries are exempt from the
// bound. The limit is a backstop for transient schemas that escape the
// batch scheduler's end-of-batch eviction; size it at a multiple of
// the expected concurrent transient set, not the stored working set.
func NewAnalyzerWithLimit(limit int) *Analyzer {
	if limit < 0 {
		limit = 0
	}
	return &Analyzer{
		entries: make(map[*schema.Schema]*analyzerEntry),
		limit:   limit,
		active:  make(map[int64]struct{}),
		dead:    make(map[*schema.Schema]int64),
	}
}

// BeginBatch opens a batch window and returns its closer (idempotent).
// While any window is open, Evict and single-schema Invalidate
// tombstone their target instead of merely dropping it: an in-flight
// match that captured the schema before the deletion gets throwaway
// indexes from then on and cannot re-publish the analysis into the
// cache. Every match operation that may run concurrently with schema
// deletion must bracket itself with BeginBatch/close; the batch
// schedulers do so via match.Context.BeginAnalysis.
func (a *Analyzer) BeginBatch() func() {
	a.mu.Lock()
	a.seq++
	id := a.seq
	a.active[id] = struct{}{}
	a.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			defer a.mu.Unlock()
			delete(a.active, id)
			a.pruneDeadLocked()
		})
	}
}

// killLocked tombstones a schema under a.mu when any batch window is
// open; with no window open no in-flight build can exist and a plain
// drop suffices.
func (a *Analyzer) killLocked(s *schema.Schema) {
	if len(a.active) == 0 {
		return
	}
	a.seq++
	a.dead[s] = a.seq
	a.tombstones.Add(1)
}

// pruneDeadLocked reclaims tombstones under a.mu: with no window open
// all of them, otherwise those older than every open window (no
// remaining window can predate the deletion, so no in-flight build can
// still hold the schema).
func (a *Analyzer) pruneDeadLocked() {
	if len(a.dead) == 0 {
		return
	}
	if len(a.active) == 0 {
		clear(a.dead)
		return
	}
	oldest := int64(0)
	for id := range a.active {
		if oldest == 0 || id < oldest {
			oldest = id
		}
	}
	for s, killed := range a.dead {
		if killed < oldest {
			delete(a.dead, s)
		}
	}
}

// Index returns the cached index for the schema, building it on first
// use. A cached index that went stale — the schema was structurally
// modified (and Invalidate'd), or the sources differ or were mutated —
// is rebuilt transparently.
func (a *Analyzer) Index(s *schema.Schema, src Sources) *SchemaIndex {
	a.mu.Lock()
	if _, killed := a.dead[s]; killed {
		// The schema was deleted while a batch still in flight may
		// reference it: serve a throwaway index so that match completes
		// correctly without the cache resurrecting the deleted entry.
		a.mu.Unlock()
		a.misses.Add(1)
		return NewIndex(s, src)
	}
	e := a.entries[s]
	if e == nil {
		e = &analyzerEntry{}
		a.entries[s] = e
	}
	a.seq++
	e.lastUse = a.seq
	a.mu.Unlock()
	e.mu.Lock()
	idx := e.idx.Load()
	rebuilt := false
	// The build runs under a deferred unlock so a panicking NewIndex
	// (pathological schema) cannot strand the per-schema build lock —
	// a permanently held e.mu would deadlock every later Index call on
	// this schema.
	func() {
		defer e.mu.Unlock()
		if !idx.Valid(s, src) {
			// A stale index still holds valid name profiles when only the
			// schema changed; rebuild incrementally off it.
			idx = NewIndexReusing(s, src, idx)
			e.idx.Store(idx)
			rebuilt = true
		}
	}()
	if rebuilt {
		a.misses.Add(1)
		a.enforceLimit()
	} else {
		a.hits.Add(1)
	}
	return idx
}

// Seed installs a pre-built index for its schema without counting
// cache traffic — the warm-restart path, which restores analyses from
// a persisted artifact instead of rebuilding them. An index that is
// not valid for (s, its own sources) is ignored. Seeding re-adopts a
// tombstoned schema, like Pin.
func (a *Analyzer) Seed(s *schema.Schema, idx *SchemaIndex) {
	if s == nil || idx == nil || !idx.Valid(s, idx.Src) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.dead, s)
	e := a.entries[s]
	if e == nil {
		e = &analyzerEntry{}
		a.entries[s] = e
	}
	a.seq++
	e.lastUse = a.seq
	e.idx.Store(idx)
}

// Peek returns the cached index for s when one is present and still
// valid, without building, blocking on a build, or counting cache
// traffic — the checkpoint export path, which persists exactly the
// analyses that are warm.
func (a *Analyzer) Peek(s *schema.Schema) *SchemaIndex {
	a.mu.Lock()
	e := a.entries[s]
	a.mu.Unlock()
	if e == nil {
		return nil
	}
	idx := e.idx.Load()
	if idx == nil || !idx.Valid(s, idx.Src) {
		return nil
	}
	return idx
}

// enforceLimit evicts least-recently-used unpinned indexes while more
// than limit are cached.
func (a *Analyzer) enforceLimit() {
	if a.limit <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		over := -a.limit
		var victim *schema.Schema
		var victimUse int64
		for s, e := range a.entries {
			if e.pinned || e.idx.Load() == nil {
				continue
			}
			over++
			if victim == nil || e.lastUse < victimUse {
				victim, victimUse = s, e.lastUse
			}
		}
		if over <= 0 || victim == nil {
			return
		}
		delete(a.entries, victim)
		a.evictions.Add(1)
	}
}

// Pin marks a schema as long-lived: its cached index survives Evict
// and the capacity bound until Release. Pinning is idempotent — a
// schema is pinned or not, and one Release unpins it regardless of
// how many Pins preceded (so re-mounting a server handler or calling
// Analyze repeatedly can never strand a deleted schema's entry behind
// leftover pins). Pin does not build the index — pair with Index (or
// the engine's Analyze) to front-load analysis.
func (a *Analyzer) Pin(s *schema.Schema) {
	if s == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Pinning re-adopts: a schema re-imported (or re-pinned) after a
	// tombstoning delete is long-lived again and must cache normally.
	delete(a.dead, s)
	e := a.entries[s]
	if e == nil {
		e = &analyzerEntry{}
		a.entries[s] = e
	}
	e.pinned = true
	a.pins.Add(1)
}

// Release unpins a schema. The index (if any) stays cached but
// becomes evictable again; a never-analyzed entry is dropped
// entirely.
func (a *Analyzer) Release(s *schema.Schema) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entries[s]
	if e == nil {
		return
	}
	e.pinned = false
	if e.idx.Load() == nil {
		delete(a.entries, s)
	}
}

// Pinned reports whether the schema is currently pinned.
func (a *Analyzer) Pinned(s *schema.Schema) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entries[s]
	return e != nil && e.pinned
}

// Evict drops the cached index of a transient schema; pinned schemas
// are left untouched. It reports whether an entry was dropped. The
// batch schedulers call it for the incoming schema at batch end, so a
// served inline schema's analysis dies with its request instead of
// accumulating in every engine that touched it. While a batch window
// is open (BeginBatch), the schema is additionally tombstoned — even
// when no entry exists yet — so a concurrent batch's build publishing
// after the eviction is dropped instead of resurrecting the entry.
func (a *Analyzer) Evict(s *schema.Schema) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entries[s]
	if e != nil && e.pinned {
		return false
	}
	a.killLocked(s)
	if e == nil {
		return false
	}
	delete(a.entries, s)
	a.evictions.Add(1)
	return true
}

// Invalidate drops the cached index of a schema (or all schemas when
// s is nil); call it after structurally modifying a schema that may
// be matched again. Pins survive: a pinned schema's entry stays (and
// stays exempt from eviction), only its stale index is dropped.
//
// Invalidating an unpinned schema while a batch window is open
// additionally tombstones it (see BeginBatch) — the delete path
// (Release then Invalidate) relies on this so an in-flight match
// holding the deleted instance cannot re-publish its analysis. The
// wholesale Invalidate(nil) never tombstones: it flushes for
// consistency, and still-stored schemas must re-cache on next use.
func (a *Analyzer) Invalidate(s *schema.Schema) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s == nil {
		for k, e := range a.entries {
			a.dropLocked(k, e)
		}
		return
	}
	e := a.entries[s]
	if e == nil || !e.pinned {
		a.killLocked(s)
	}
	if e != nil {
		a.dropLocked(s, e)
	}
}

// dropLocked removes one entry's index under a.mu: unpinned entries
// are deleted; pinned ones are replaced by a fresh index-less entry
// carrying the pin (replaced rather than mutated, so a build racing
// on the old entry publishes into an orphan instead of resurrecting a
// dropped index).
func (a *Analyzer) dropLocked(s *schema.Schema, e *analyzerEntry) {
	a.invalidations.Add(1)
	if e.pinned {
		a.entries[s] = &analyzerEntry{pinned: true, lastUse: e.lastUse}
		return
	}
	delete(a.entries, s)
}

// Len returns the number of cached indexes (entries that currently
// hold a built index; bare pins do not count). Serving tests assert
// with it that inline-schema analyses do not accumulate.
func (a *Analyzer) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range a.entries {
		if e.idx.Load() != nil {
			n++
		}
	}
	return n
}
