package analysis_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/workload"
)

// TestEvictTombstonesDuringBatch pins the deletion/batch race contract
// deterministically: a schema evicted while a batch window is open is
// tombstoned, so a later Index call from the in-flight batch gets a
// throwaway index instead of re-publishing the entry; once every window
// predating the deletion closes, the tombstone is reclaimed and the
// schema caches normally again.
func TestEvictTombstonesDuringBatch(t *testing.T) {
	src := defaultSources()
	s := workload.Candidates(1)[0]
	a := analysis.NewAnalyzer()

	// The served delete flow: the schema is cached (pinned, as a stored
	// schema would be), a batch is in flight, and the DELETE lands.
	a.Pin(s)
	a.Index(s, src)
	end := a.BeginBatch()
	a.Release(s)
	a.Invalidate(s)
	if n := a.Len(); n != 0 {
		t.Fatalf("after delete: %d cached analyses, want 0", n)
	}
	// The in-flight batch references the instance it captured before the
	// delete; its analysis must not re-enter the cache.
	idx := a.Index(s, src)
	if idx == nil || idx.Schema != s {
		t.Fatalf("throwaway index = %v", idx)
	}
	if n := a.Len(); n != 0 {
		t.Errorf("in-flight Index after delete resurrected the entry (Len %d)", n)
	}
	if a.Index(s, src) == idx {
		t.Error("tombstoned schema served a cached index")
	}
	end()
	// Window closed: the tombstone is reclaimed, normal caching resumes
	// (a re-imported instance would be re-pinned; identity is what
	// matters here).
	cached := a.Index(s, src)
	if a.Index(s, src) != cached {
		t.Error("after window close the schema no longer caches")
	}
	if n := a.Len(); n != 1 {
		t.Errorf("after window close: Len %d, want 1", n)
	}
}

// TestEvictWithoutEntryTombstones: the tombstone must be laid even when
// no entry exists yet — the batch may not have analyzed the schema when
// the delete lands, and the resurrection happens on its first Index.
func TestEvictWithoutEntryTombstones(t *testing.T) {
	src := defaultSources()
	s := workload.Candidates(1)[0]
	a := analysis.NewAnalyzer()

	end := a.BeginBatch()
	if a.Evict(s) {
		t.Error("Evict of a never-analyzed schema reported an entry")
	}
	a.Index(s, src)
	if n := a.Len(); n != 0 {
		t.Errorf("Index after entry-less Evict cached (Len %d)", n)
	}
	end()
}

// TestTombstoneOutlivesOverlappingWindow: a tombstone is only reclaimed
// once every window that predates the deletion has closed — a window
// opened before the delete may still hold the instance even after some
// other window ends.
func TestTombstoneOutlivesOverlappingWindow(t *testing.T) {
	src := defaultSources()
	s := workload.Candidates(1)[0]
	a := analysis.NewAnalyzer()

	endA := a.BeginBatch()
	endB := a.BeginBatch()
	a.Evict(s) // deletion lands while A and B are both open
	endB()
	// A predates the deletion and is still open: the tombstone must hold.
	a.Index(s, src)
	if n := a.Len(); n != 0 {
		t.Errorf("tombstone reclaimed while a predating window was open (Len %d)", n)
	}
	endA()
	a.Index(s, src)
	if n := a.Len(); n != 1 {
		t.Errorf("tombstone not reclaimed after all windows closed (Len %d)", n)
	}
}

// TestWindowAfterDeleteReclaims: a window opened after the deletion
// cannot hold the dead instance, so closing the predating window
// reclaims the tombstone even while the younger window is still open.
func TestWindowAfterDeleteReclaims(t *testing.T) {
	src := defaultSources()
	s := workload.Candidates(1)[0]
	a := analysis.NewAnalyzer()

	endA := a.BeginBatch()
	a.Evict(s)
	endB := a.BeginBatch() // opened after the delete
	endA()
	a.Index(s, src)
	if n := a.Len(); n != 1 {
		t.Errorf("tombstone survived its last predating window (Len %d)", n)
	}
	endB()
}

// TestPinClearsTombstone: re-importing a deleted schema (Pin) re-adopts
// it — the tombstone is cleared and the schema caches normally even
// while the old batch window is still open.
func TestPinClearsTombstone(t *testing.T) {
	src := defaultSources()
	s := workload.Candidates(1)[0]
	a := analysis.NewAnalyzer()

	end := a.BeginBatch()
	a.Evict(s)
	a.Pin(s)
	idx := a.Index(s, src)
	if a.Index(s, src) != idx {
		t.Error("re-pinned schema does not cache")
	}
	if n := a.Len(); n != 1 {
		t.Errorf("re-pinned schema: Len %d, want 1", n)
	}
	end()
}

// TestInvalidateAllNeverTombstones: the wholesale flush drops every
// index but must not tombstone still-stored schemas — they re-cache on
// next use even inside an open window.
func TestInvalidateAllNeverTombstones(t *testing.T) {
	src := defaultSources()
	s := workload.Candidates(1)[0]
	a := analysis.NewAnalyzer()

	end := a.BeginBatch()
	a.Index(s, src)
	a.Invalidate(nil)
	if n := a.Len(); n != 0 {
		t.Fatalf("Invalidate(nil) left %d indexes", n)
	}
	a.Index(s, src)
	if n := a.Len(); n != 1 {
		t.Errorf("schema does not re-cache after wholesale flush (Len %d)", n)
	}
	end()
}

// TestAnalyzerDeleteRace is the -race regression for the PR 5 residual:
// a DELETE (store removal, then Release + Invalidate) racing an
// in-flight batch must never resurrect the deleted schema's analysis.
// The batch follows the engine contract pinned by
// Repository.MatchIncomingContext — open the analyzer window first,
// check store membership inside it — so any delete the batch can still
// observe tombstones against its window. Every round races one batch
// against one delete over a fresh instance; without tombstones the
// interleaving "delete completes, then the batch's Index publishes"
// leaks one entry per round, which the final Len check catches.
func TestAnalyzerDeleteRace(t *testing.T) {
	src := defaultSources()
	a := analysis.NewAnalyzer()
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		s := workload.Candidates(1)[0]
		s.Name = fmt.Sprintf("race-%03d", round)
		a.Pin(s)
		a.Index(s, src)
		var deleted atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			end := a.BeginBatch()
			defer end()
			if deleted.Load() { // store membership snapshot, inside the window
				return
			}
			for i := 0; i < 4; i++ {
				a.Index(s, src)
			}
		}()
		go func() {
			defer wg.Done()
			deleted.Store(true) // the store's TakeSchema
			a.Release(s)
			a.Invalidate(s)
		}()
		wg.Wait()
		if a.Pinned(s) {
			t.Fatalf("round %d: schema still pinned after delete", round)
		}
	}
	if n := a.Len(); n != 0 {
		t.Errorf("deleted schemas leaked %d analyses", n)
	}
}
