package analysis_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/schema"
	"repro/internal/strutil"
	"repro/internal/workload"
)

// profileEqual compares two name profiles field by field, n-gram
// multisets included (grams are unexported, so Grams() stands in).
func profileEqual(t *testing.T, ctx string, a, b *strutil.NameProfile) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("%s: name %q != %q", ctx, a.Name, b.Name)
	}
	if !reflect.DeepEqual(a.Tokens, b.Tokens) {
		t.Fatalf("%s (%q): tokens %v != %v", ctx, a.Name, a.Tokens, b.Tokens)
	}
	for i := range a.Profiles {
		pa, pb := a.Profiles[i], b.Profiles[i]
		if pa.Token != pb.Token || pa.Norm != pb.Norm || pa.Code != pb.Code {
			t.Fatalf("%s (%q token %q): derived fields differ", ctx, a.Name, pa.Token)
		}
		if pa.DictSrc != pb.DictSrc || pa.DictID != pb.DictID || !reflect.DeepEqual(pa.DictRel, pb.DictRel) {
			t.Fatalf("%s (%q token %q): dictionary annotations differ: %v/%v vs %v/%v",
				ctx, a.Name, pa.Token, pa.DictID, pa.DictRel, pb.DictID, pb.DictRel)
		}
		if pa.TaxSrc != pb.TaxSrc || !reflect.DeepEqual(pa.TaxChain, pb.TaxChain) {
			t.Fatalf("%s (%q token %q): taxonomy annotations differ", ctx, a.Name, pa.Token)
		}
		for _, n := range []int{2, 3} {
			if !reflect.DeepEqual(pa.Grams(n), pb.Grams(n)) {
				t.Fatalf("%s (%q token %q): %d-grams differ", ctx, a.Name, pa.Token, n)
			}
		}
	}
}

func indexEqual(t *testing.T, ctx string, a, b *analysis.SchemaIndex) {
	t.Helper()
	if !reflect.DeepEqual(a.Keys, b.Keys) || !reflect.DeepEqual(a.Parent, b.Parent) ||
		!reflect.DeepEqual(a.Children, b.Children) || !reflect.DeepEqual(a.Leaves, b.Leaves) ||
		!reflect.DeepEqual(a.Generic, b.Generic) || !reflect.DeepEqual(a.NameID, b.NameID) ||
		!reflect.DeepEqual(a.LongNameID, b.LongNameID) {
		t.Fatalf("%s: structural arrays differ", ctx)
	}
	if len(a.Names) != len(b.Names) || len(a.LongNames) != len(b.LongNames) {
		t.Fatalf("%s: %d/%d names vs %d/%d", ctx, len(a.Names), len(a.LongNames), len(b.Names), len(b.LongNames))
	}
	for i := range a.Names {
		profileEqual(t, ctx+": names", a.Names[i], b.Names[i])
		profileEqual(t, ctx+": raw names",
			&strutil.NameProfile{Name: a.RawNames[i].Token, Tokens: []string{a.RawNames[i].Token}, Profiles: []*strutil.TokenProfile{a.RawNames[i]}},
			&strutil.NameProfile{Name: b.RawNames[i].Token, Tokens: []string{b.RawNames[i].Token}, Profiles: []*strutil.TokenProfile{b.RawNames[i]}})
	}
	for i := range a.LongNames {
		profileEqual(t, ctx+": long names", a.LongNames[i], b.LongNames[i])
	}
}

// TestArtifactRoundTripBitIdentical: restoring an exported index
// yields exactly the index a fresh analysis would build — the
// warm-restart equivalence the match layer's bit-identity rests on.
func TestArtifactRoundTripBitIdentical(t *testing.T) {
	src := defaultSources()
	rng := rand.New(rand.NewSource(11))
	schemas := append([]*schema.Schema{}, workload.Schemas()...)
	for i := 0; i < 10; i++ {
		schemas = append(schemas, randomSchema(rng, fmt.Sprintf("A%d", i)))
	}
	for _, s := range schemas {
		fresh := analysis.NewIndex(s, src)
		data := analysis.ExportIndex(fresh)
		restored, err := analysis.RestoreIndex(s, src, data)
		if err != nil {
			t.Fatalf("%s: restore: %v", s.Name, err)
		}
		if !restored.Valid(s, src) {
			t.Fatalf("%s: restored index not valid", s.Name)
		}
		indexEqual(t, s.Name, fresh, restored)
	}
}

// TestArtifactPartialCoverage: an artifact exported for an older
// schema revision restores correctly — uncovered names are analyzed
// fresh, covered ones come from the artifact.
func TestArtifactPartialCoverage(t *testing.T) {
	src := defaultSources()
	s := randomSchema(rand.New(rand.NewSource(3)), "P")
	data := analysis.ExportIndex(analysis.NewIndex(s, src))
	extra := schema.NewNode("freshlyAddedCity")
	extra.TypeName = "VARCHAR(10)"
	s.Root.AddChild(extra)
	s.Invalidate()
	restored, err := analysis.RestoreIndex(s, src, data)
	if err != nil {
		t.Fatal(err)
	}
	indexEqual(t, "partial", analysis.NewIndex(s, src), restored)
}

func TestArtifactCorrupt(t *testing.T) {
	src := defaultSources()
	s := workload.Schemas()[0]
	data := analysis.ExportIndex(analysis.NewIndex(s, src))
	if _, err := analysis.RestoreIndex(s, src, data[:len(data)/2]); err == nil {
		t.Error("truncated artifact restored without error")
	}
	if _, err := analysis.RestoreIndex(s, src, append([]byte{}, 0xFF)); err == nil {
		t.Error("bad version restored without error")
	}
	if _, err := analysis.RestoreIndex(s, src, append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing bytes restored without error")
	}
}

// TestNewIndexReusing: a rebuild after a structural edit reuses the
// unchanged names' profiles by pointer and only analyzes new names;
// a source mutation disables reuse entirely.
func TestNewIndexReusing(t *testing.T) {
	src := defaultSources()
	s := schema.New("R")
	top := schema.NewNode("ShipTo")
	for _, c := range []string{"custNo", "city", "zip"} {
		leaf := schema.NewNode(c)
		leaf.TypeName = "VARCHAR(10)"
		top.AddChild(leaf)
	}
	s.Root.AddChild(top)
	prev := analysis.NewIndex(s, src)

	extra := schema.NewNode("street")
	extra.TypeName = "VARCHAR(20)"
	top.AddChild(extra)
	s.Invalidate()
	next := analysis.NewIndexReusing(s, src, prev)
	if !next.Valid(s, src) {
		t.Fatal("incrementally rebuilt index not valid")
	}
	indexEqual(t, "reuse", analysis.NewIndex(s, src), next)
	reused := 0
	prevByName := map[string]*strutil.NameProfile{}
	for _, np := range prev.Names {
		prevByName[np.Name] = np
	}
	for _, np := range next.Names {
		if prevByName[np.Name] == np {
			reused++
		}
	}
	if reused != len(prev.Names) {
		t.Errorf("reused %d of %d unchanged profiles", reused, len(prev.Names))
	}
	if len(next.Names) != len(prev.Names)+1 {
		t.Errorf("next has %d names, want %d", len(next.Names), len(prev.Names)+1)
	}

	// A mutated dictionary poisons every prior annotation: no reuse.
	src.Dict.AddSynonym("street", "road")
	s.Invalidate()
	cold := analysis.NewIndexReusing(s, src, next)
	for _, np := range cold.Names {
		for _, old := range next.Names {
			if np == old {
				t.Fatalf("profile %q reused across a dictionary mutation", np.Name)
			}
		}
	}
}

// TestAnalyzerSeedPeek: Seed installs a restored index without
// counting traffic, Peek reads without building, and the next Index
// call is a hit — the "warm restart skips re-analysis" contract.
func TestAnalyzerSeedPeek(t *testing.T) {
	src := defaultSources()
	s := workload.Schemas()[0]
	a := analysis.NewAnalyzer()
	if a.Peek(s) != nil {
		t.Fatal("Peek invented an index")
	}
	idx := analysis.NewIndex(s, src)
	a.Seed(s, idx)
	if st := a.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Seed counted traffic: %+v", st)
	}
	if a.Peek(s) != idx {
		t.Fatal("Peek did not return the seeded index")
	}
	if a.Index(s, src) != idx {
		t.Fatal("Index rebuilt despite a seeded index")
	}
	if st := a.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("seeded Index call not a pure hit: %+v", st)
	}
	// A stale seed is rejected, not trusted.
	s2 := randomSchema(rand.New(rand.NewSource(5)), "SeedStale")
	idx2 := analysis.NewIndex(s2, src)
	s2.Root.AddChild(schema.NewNode("late"))
	s2.Invalidate()
	a.Seed(s2, idx2)
	if a.Peek(s2) != nil {
		t.Fatal("stale index seeded into the cache")
	}
}
