// Package importer converts external schema sources into COMA's
// internal graph representation (Do & Rahm, VLDB 2002, Section 3,
// Figure 1): relational schemas from SQL DDL and XML schemas from XSD.
package importer

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/schema"
)

// ParseSQL imports a relational schema from a sequence of CREATE TABLE
// statements. Tables become top-level graph nodes containing their
// columns as leaves; primary keys are annotated and foreign keys
// (inline REFERENCES and table-level FOREIGN KEY constraints) become
// referential links from the column node to the referenced table node.
//
// The schema takes the given name; schema-qualified table names
// ("PO1.ShipTo") are accepted and the qualifier dropped.
func ParseSQL(name, src string) (*schema.Schema, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, out: schema.New(name)}
	p.tables = make(map[string]*schema.Node)
	p.columns = make(map[string]map[string]*schema.Node)
	if err := p.parse(); err != nil {
		return nil, err
	}
	p.resolveFKs()
	if err := p.out.Validate(); err != nil {
		return nil, err
	}
	return p.out, nil
}

// --- lexer -----------------------------------------------------------------

type sqlToken struct {
	text string // upper-cased for keywords/identifiers comparison via eq
	raw  string
	punc bool
	line int
}

func lexSQL(src string) ([]sqlToken, error) {
	var toks []sqlToken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case unicode.IsSpace(rune(c)):
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '.':
			toks = append(toks, sqlToken{text: string(c), raw: string(c), punc: true, line: line})
			i++
		case c == '\'' || c == '"' || c == '`':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j == len(src) {
				return nil, fmt.Errorf("sql line %d: unterminated quoted token", line)
			}
			raw := src[i+1 : j]
			toks = append(toks, sqlToken{text: strings.ToUpper(raw), raw: raw, line: line})
			i = j + 1
		case isIdentByte(c) || c >= '0' && c <= '9':
			j := i
			for j < len(src) && (isIdentByte(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			raw := src[i:j]
			toks = append(toks, sqlToken{text: strings.ToUpper(raw), raw: raw, line: line})
			i = j
		default:
			// Operators and other punctuation irrelevant to DDL shape.
			toks = append(toks, sqlToken{text: string(c), raw: string(c), punc: true, line: line})
			i++
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

// --- parser ----------------------------------------------------------------

type pendingFK struct {
	fromTable, fromCol string
	toTable, toCol     string
	line               int
}

type sqlParser struct {
	toks    []sqlToken
	pos     int
	out     *schema.Schema
	tables  map[string]*schema.Node
	columns map[string]map[string]*schema.Node
	fks     []pendingFK
}

func (p *sqlParser) peek() sqlToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return sqlToken{}
}

func (p *sqlParser) next() sqlToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *sqlParser) accept(text string) bool {
	if p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expect(text string) error {
	if !p.accept(text) {
		t := p.peek()
		return fmt.Errorf("sql line %d: expected %q, got %q", t.line, text, t.raw)
	}
	return nil
}

func (p *sqlParser) parse() error {
	for p.pos < len(p.toks) {
		if p.accept(";") {
			continue
		}
		if err := p.expect("CREATE"); err != nil {
			return err
		}
		if !p.accept("TABLE") {
			// Skip other CREATE statements (INDEX, VIEW, ...) to the
			// terminating semicolon.
			for p.pos < len(p.toks) && !p.accept(";") {
				p.pos++
			}
			continue
		}
		if err := p.parseTable(); err != nil {
			return err
		}
	}
	return nil
}

// qualifiedName reads ident (DOT ident)* and returns the last segment.
func (p *sqlParser) qualifiedName() (string, error) {
	t := p.next()
	if t.punc || t.raw == "" {
		return "", fmt.Errorf("sql line %d: expected identifier, got %q", t.line, t.raw)
	}
	name := t.raw
	for p.accept(".") {
		t = p.next()
		if t.punc || t.raw == "" {
			return "", fmt.Errorf("sql line %d: expected identifier after '.'", t.line)
		}
		name = t.raw
	}
	return name, nil
}

func (p *sqlParser) parseTable() error {
	p.accept("IF") // IF NOT EXISTS
	p.accept("NOT")
	p.accept("EXISTS")
	tname, err := p.qualifiedName()
	if err != nil {
		return err
	}
	if _, dup := p.tables[tname]; dup {
		return fmt.Errorf("sql: duplicate table %q", tname)
	}
	table := schema.NewNode(tname)
	table.Kind = schema.ElemTable
	p.tables[tname] = table
	p.columns[tname] = make(map[string]*schema.Node)
	p.out.Root.AddChild(table)
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		if err := p.parseTableEntry(tname, table); err != nil {
			return err
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	p.accept(";")
	return nil
}

// parseTableEntry parses one column definition or table constraint.
func (p *sqlParser) parseTableEntry(tname string, table *schema.Node) error {
	t := p.peek()
	switch t.text {
	case "PRIMARY":
		p.next()
		if err := p.expect("KEY"); err != nil {
			return err
		}
		cols, err := p.parenNameList()
		if err != nil {
			return err
		}
		for _, c := range cols {
			if col := p.columns[tname][strings.ToUpper(c)]; col != nil {
				col.SetAnnotation("primaryKey", "true")
			}
		}
		return nil
	case "FOREIGN":
		p.next()
		if err := p.expect("KEY"); err != nil {
			return err
		}
		cols, err := p.parenNameList()
		if err != nil {
			return err
		}
		if err := p.expect("REFERENCES"); err != nil {
			return err
		}
		target, err := p.qualifiedName()
		if err != nil {
			return err
		}
		var tcols []string
		if p.peek().text == "(" {
			tcols, err = p.parenNameList()
			if err != nil {
				return err
			}
		}
		for i, c := range cols {
			fk := pendingFK{fromTable: tname, fromCol: c, toTable: target, line: t.line}
			if i < len(tcols) {
				fk.toCol = tcols[i]
			}
			p.fks = append(p.fks, fk)
		}
		return nil
	case "UNIQUE", "CHECK", "CONSTRAINT":
		// Table-level constraints without graph impact: skip to the
		// matching comma/paren at this nesting level.
		p.skipEntry()
		return nil
	}
	return p.parseColumn(tname, table)
}

func (p *sqlParser) parseColumn(tname string, table *schema.Node) error {
	colTok := p.next()
	if colTok.punc || colTok.raw == "" {
		return fmt.Errorf("sql line %d: expected column name, got %q", colTok.line, colTok.raw)
	}
	typeTok := p.next()
	if typeTok.punc || typeTok.raw == "" {
		return fmt.Errorf("sql line %d: column %q lacks a type", typeTok.line, colTok.raw)
	}
	typeName := typeTok.raw
	if p.accept("(") {
		var params []string
		for p.peek().text != ")" && p.pos < len(p.toks) {
			params = append(params, p.next().raw)
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		typeName += "(" + strings.Join(params, "") + ")"
	}
	col := &schema.Node{Name: colTok.raw, TypeName: typeName, Kind: schema.ElemColumn}
	table.AddChild(col)
	p.columns[tname][strings.ToUpper(colTok.raw)] = col
	// Column constraints.
	for {
		switch p.peek().text {
		case "PRIMARY":
			p.next()
			if err := p.expect("KEY"); err != nil {
				return err
			}
			col.SetAnnotation("primaryKey", "true")
		case "NOT":
			p.next()
			if err := p.expect("NULL"); err != nil {
				return err
			}
			col.SetAnnotation("notNull", "true")
		case "NULL", "UNIQUE":
			p.next()
		case "DEFAULT":
			p.next()
			p.next() // literal
		case "REFERENCES":
			line := p.next().line
			target, err := p.qualifiedName()
			if err != nil {
				return err
			}
			fk := pendingFK{fromTable: tname, fromCol: colTok.raw, toTable: target, line: line}
			if p.peek().text == "(" {
				cols, err := p.parenNameList()
				if err != nil {
					return err
				}
				if len(cols) > 0 {
					fk.toCol = cols[0]
				}
			}
			p.fks = append(p.fks, fk)
		case ",", ")":
			return nil
		case "":
			return fmt.Errorf("sql line %d: unterminated column definition for %q", colTok.line, colTok.raw)
		default:
			// Unknown column attribute (e.g. AUTO_INCREMENT): skip.
			p.next()
		}
	}
}

// parenNameList parses "( ident [, ident]* )".
func (p *sqlParser) parenNameList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		t := p.next()
		if t.punc {
			return nil, fmt.Errorf("sql line %d: expected name in list, got %q", t.line, t.raw)
		}
		out = append(out, t.raw)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// skipEntry advances past one parenthesis-balanced table entry.
func (p *sqlParser) skipEntry() {
	depth := 0
	for p.pos < len(p.toks) {
		switch p.peek().text {
		case "(":
			depth++
		case ")":
			if depth == 0 {
				return
			}
			depth--
		case ",":
			if depth == 0 {
				return
			}
		}
		p.pos++
	}
}

// resolveFKs turns pending foreign keys into referential links. Links
// to unknown tables are ignored (cross-schema references).
func (p *sqlParser) resolveFKs() {
	for _, fk := range p.fks {
		target, ok := p.tables[fk.toTable]
		if !ok {
			continue
		}
		col := p.columns[fk.fromTable][strings.ToUpper(fk.fromCol)]
		if col == nil {
			continue
		}
		col.AddRef(target)
		col.SetAnnotation("references", fk.toTable)
	}
}
