package importer

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// ParseAs imports a schema document, dispatching on a format tag: sql,
// ddl (CREATE TABLE statements), xsd, xml (XML schema), json (JSON
// Schema) or dtd. The tag is case-insensitive and may carry a leading
// dot, so file extensions pass through unchanged — it is the one
// dispatcher behind coma.LoadFile and the server's inline schema
// import. Documents importing to an empty schema (no element paths)
// are rejected: an empty schema can neither be matched nor serve as a
// match candidate.
func ParseAs(name, format string, src []byte) (*schema.Schema, error) {
	var (
		s   *schema.Schema
		err error
	)
	switch strings.ToLower(strings.TrimPrefix(format, ".")) {
	case "sql", "ddl":
		s, err = ParseSQL(name, string(src))
	case "xsd", "xml":
		s, err = ParseXSD(name, src)
	case "json":
		s, err = ParseJSONSchema(name, src)
	case "dtd":
		s, err = ParseDTD(name, src)
	default:
		return nil, fmt.Errorf("importer: unknown schema format %q (want sql, ddl, xsd, xml, json or dtd)", format)
	}
	if err != nil {
		return nil, err
	}
	if len(s.Paths()) == 0 {
		return nil, fmt.Errorf("importer: schema %q is empty (no element paths)", name)
	}
	return s, nil
}
