package importer

import (
	"testing"

	"repro/internal/schema"
)

const poDTD = `
<!-- purchase order message -->
<!ELEMENT PurchaseOrder (Header, ShipTo, BillTo, Items)>
<!ELEMENT Header (poNumber, poDate?)>
<!ELEMENT poNumber (#PCDATA)>
<!ELEMENT poDate (#PCDATA)>
<!ELEMENT ShipTo (Address)>
<!ELEMENT BillTo (Address)>
<!ELEMENT Address (street, city, zip)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
<!ELEMENT Items (Item+)>
<!ELEMENT Item (sku, qty)>
<!ATTLIST Item lineNo CDATA #REQUIRED currency CDATA #IMPLIED>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
`

func TestParseDTD(t *testing.T) {
	s, err := ParseDTD("po", []byte(poDTD))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"PurchaseOrder.Header.poNumber",
		"PurchaseOrder.ShipTo.Address.city",
		"PurchaseOrder.BillTo.Address.city",
		"PurchaseOrder.Items.Item.sku",
		"PurchaseOrder.Items.Item.lineNo", // attribute
	} {
		if _, ok := s.FindPath(want); !ok {
			t.Errorf("missing path %s\n%s", want, s.String())
		}
	}
	// Address is a shared fragment.
	st := schema.ComputeStats(s)
	if st.Paths <= st.Nodes {
		t.Errorf("sharing lost: %d paths vs %d nodes", st.Paths, st.Nodes)
	}
	city, _ := s.FindPath("PurchaseOrder.ShipTo.Address.city")
	if city.Leaf().TypeName != "#PCDATA" {
		t.Errorf("city type = %q", city.Leaf().TypeName)
	}
	attr, _ := s.FindPath("PurchaseOrder.Items.Item.lineNo")
	if attr.Leaf().TypeName != "CDATA" {
		t.Errorf("attribute type = %q", attr.Leaf().TypeName)
	}
}

func TestParseDTDContentModels(t *testing.T) {
	src := `
<!ELEMENT root (a | b)*>
<!ELEMENT a EMPTY>
<!ELEMENT b ANY>
`
	s, err := ParseDTD("m", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FindPath("root.a"); !ok {
		t.Errorf("choice member a lost:\n%s", s.String())
	}
	if _, ok := s.FindPath("root.b"); !ok {
		t.Errorf("choice member b lost:\n%s", s.String())
	}
}

func TestParseDTDRecursive(t *testing.T) {
	src := `
<!ELEMENT part (name, part?)>
<!ELEMENT name (#PCDATA)>
`
	s, err := ParseDTD("rec", []byte(src))
	if err != nil {
		t.Fatalf("recursive content model should degrade gracefully: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
}

func TestParseDTDUndeclaredReference(t *testing.T) {
	src := `<!ELEMENT root (mystery)>`
	s, err := ParseDTD("u", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.FindPath("root.mystery")
	if !ok || !p.Leaf().IsLeaf() {
		t.Error("undeclared reference should become a permissive leaf")
	}
}

func TestParseDTDErrors(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"<!ELEMENT a (b)> <!ELEMENT b (a)>",     // all referenced... a references b, b references a: both referenced → no root
		"<!ELEMENT unterminated",                // unterminated declaration
		"<!ELEMENT x>",                          // missing content model
		"<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>", // duplicate
		"<!ELEMENT a foo>",                      // unsupported model
	}
	for _, src := range cases {
		if _, err := ParseDTD("x", []byte(src)); err == nil {
			t.Errorf("ParseDTD(%q) should fail", src)
		}
	}
}

func TestParseDTDMatchableAgainstXSD(t *testing.T) {
	// Cross-format: the DTD message against the Figure 1 XSD imports
	// cleanly and produces distinct path keys.
	d, err := ParseDTD("po", []byte(poDTD))
	if err != nil {
		t.Fatal(err)
	}
	x, err := ParseXSD("PO2", []byte(figure1XSD))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range d.Paths() {
		if seen[p.String()] {
			t.Fatalf("duplicate key %s", p)
		}
		seen[p.String()] = true
	}
	_ = x
}
