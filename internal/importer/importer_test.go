package importer

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

// figure1DDL is the exact relational schema of the paper's Figure 1a.
const figure1DDL = `
CREATE TABLE PO1.ShipTo (
  poNo INT,
  custNo INT REFERENCES PO1.Customer,
  shipToStreet VARCHAR(200),
  shipToCity VARCHAR(200),
  shipToZip VARCHAR(20),
  PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
  custNo INT,
  custName VARCHAR(200),
  custStreet VARCHAR(200),
  custCity VARCHAR(200),
  custZip VARCHAR(20),
  PRIMARY KEY (custNo)
);`

// figure1XSD is the XML schema of Figure 1a.
const figure1XSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2">
  <xsd:sequence>
   <xsd:element name="DeliverTo" type="Address"/>
   <xsd:element name="BillTo" type="Address"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="Address">
  <xsd:sequence>
   <xsd:element name="Street" type="xsd:string"/>
   <xsd:element name="City" type="xsd:string"/>
   <xsd:element name="Zip" type="xsd:decimal"/>
  </xsd:sequence>
 </xsd:complexType>
</xsd:schema>`

func TestParseSQLFigure1(t *testing.T) {
	s, err := ParseSQL("PO1", figure1DDL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "PO1" {
		t.Errorf("name = %s", s.Name)
	}
	st := schema.ComputeStats(s)
	// 2 tables + 10 columns.
	if st.Nodes != 12 || st.Paths != 12 {
		t.Errorf("nodes/paths = %d/%d, want 12/12", st.Nodes, st.Paths)
	}
	p, ok := s.FindPath("ShipTo.shipToCity")
	if !ok {
		t.Fatal("ShipTo.shipToCity missing")
	}
	if p.Leaf().TypeName != "VARCHAR(200)" {
		t.Errorf("type = %s", p.Leaf().TypeName)
	}
	// Primary key annotation from the table-level constraint.
	poNo, _ := s.FindPath("ShipTo.poNo")
	if poNo.Leaf().Annotation("primaryKey") != "true" {
		t.Error("PRIMARY KEY (poNo) not annotated")
	}
	// Inline REFERENCES resolved to a referential link.
	custNo, _ := s.FindPath("ShipTo.custNo")
	refs := custNo.Leaf().Refs()
	if len(refs) != 1 || refs[0].Name != "Customer" {
		t.Errorf("custNo refs = %v", refs)
	}
	if custNo.Leaf().Annotation("references") != "Customer" {
		t.Error("references annotation missing")
	}
}

func TestParseSQLTableLevelFK(t *testing.T) {
	src := `
CREATE TABLE Orders (
  id INT PRIMARY KEY,
  cust INT NOT NULL,
  FOREIGN KEY (cust) REFERENCES Customers (cid)
);
CREATE TABLE Customers ( cid INT PRIMARY KEY, name VARCHAR(100) );`
	s, err := ParseSQL("shop", src)
	if err != nil {
		t.Fatal(err)
	}
	cust, _ := s.FindPath("Orders.cust")
	if len(cust.Leaf().Refs()) != 1 || cust.Leaf().Refs()[0].Name != "Customers" {
		t.Error("table-level FK not resolved")
	}
	if cust.Leaf().Annotation("notNull") != "true" {
		t.Error("NOT NULL not annotated")
	}
	id, _ := s.FindPath("Orders.id")
	if id.Leaf().Annotation("primaryKey") != "true" {
		t.Error("inline PRIMARY KEY not annotated")
	}
}

func TestParseSQLSkipsIrrelevantConstructs(t *testing.T) {
	src := `
-- a comment
CREATE INDEX foo ON bar (baz);
/* block
   comment */
CREATE TABLE T (
  a INT DEFAULT 0,
  b DECIMAL(10,2) UNIQUE,
  c VARCHAR(5) AUTO_INCREMENT,
  UNIQUE (a, b),
  CHECK (a > 0)
);`
	s, err := ParseSQL("db", src)
	if err != nil {
		t.Fatal(err)
	}
	st := schema.ComputeStats(s)
	if st.Nodes != 4 {
		t.Errorf("nodes = %d, want 4 (table + 3 columns)", st.Nodes)
	}
	b, _ := s.FindPath("T.b")
	if b.Leaf().TypeName != "DECIMAL(10,2)" {
		t.Errorf("parameterized type = %s", b.Leaf().TypeName)
	}
}

func TestParseSQLQuotedIdentifiers(t *testing.T) {
	s, err := ParseSQL("q", "CREATE TABLE \"Order Lines\" ( `line no` INT, 'desc' VARCHAR(10) );")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FindPath("Order Lines.line no"); !ok {
		t.Errorf("quoted identifiers lost: %v", s.String())
	}
}

func TestParseSQLErrors(t *testing.T) {
	cases := []string{
		"CREATE TABLE",           // missing name
		"CREATE TABLE T ( )",     // empty column list
		"CREATE TABLE T ( a INT", // unterminated
		"CREATE TABLE T ( a )",   // column without type
		"TABLE T (a INT);",       // missing CREATE
		"CREATE TABLE T (a INT); CREATE TABLE T (b INT);", // duplicate table
		"CREATE TABLE T ( a INT, PRIMARY KEY () );",       // empty key list
		"/* unterminated",
		"CREATE TABLE T ( a VARCHAR('unterminated );",
	}
	for _, src := range cases {
		if _, err := ParseSQL("x", src); err == nil {
			t.Errorf("ParseSQL(%q) should fail", src)
		}
	}
}

func TestParseXSDFigure1(t *testing.T) {
	s, err := ParseXSD("PO2", []byte(figure1XSD))
	if err != nil {
		t.Fatal(err)
	}
	st := schema.ComputeStats(s)
	// Figure 1b: 6 distinct nodes, 10 paths (Address shared).
	if st.Nodes != 6 || st.Paths != 10 {
		t.Fatalf("nodes/paths = %d/%d, want 6/10\n%s", st.Nodes, st.Paths, s.String())
	}
	for _, want := range []string{
		"DeliverTo", "BillTo",
		"DeliverTo.Address.City", "BillTo.Address.City",
		"DeliverTo.Address.Zip", "BillTo.Address.Zip",
	} {
		if _, ok := s.FindPath(want); !ok {
			t.Errorf("missing path %s", want)
		}
	}
	city, _ := s.FindPath("DeliverTo.Address.City")
	if city.Leaf().TypeName != "xsd:string" {
		t.Errorf("City type = %s", city.Leaf().TypeName)
	}
	// Address is one shared node.
	var addrCount int
	for _, n := range s.Nodes() {
		if n.Name == "Address" {
			addrCount++
		}
	}
	if addrCount != 1 {
		t.Errorf("Address nodes = %d, want 1 (shared)", addrCount)
	}
}

func TestParseXSDGlobalElements(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="order">
  <complexType>
   <sequence>
    <element name="id" type="integer"/>
    <element name="item" type="Item"/>
   </sequence>
  </complexType>
 </element>
 <complexType name="Item">
  <sequence>
   <element name="sku" type="string"/>
  </sequence>
  <attribute name="qty" type="integer"/>
 </complexType>
</schema>`
	s, err := ParseXSD("orders", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"order", "order.id", "order.item.Item.sku", "order.item.Item.qty"} {
		if _, ok := s.FindPath(want); !ok {
			t.Errorf("missing path %s\n%s", want, s.String())
		}
	}
}

func TestParseXSDChoiceAndAll(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <complexType name="Root">
  <choice>
   <element name="a" type="string"/>
   <element name="b" type="string"/>
  </choice>
 </complexType>
</schema>`
	s, err := ParseXSD("c", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FindPath("a"); !ok {
		t.Errorf("choice content lost:\n%s", s.String())
	}
}

func TestParseXSDMultipleRootTypes(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <complexType name="A"><sequence><element name="x" type="string"/></sequence></complexType>
 <complexType name="B"><sequence><element name="y" type="string"/></sequence></complexType>
</schema>`
	s, err := ParseXSD("multi", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FindPath("A.x"); !ok {
		t.Errorf("root type A lost:\n%s", s.String())
	}
	if _, ok := s.FindPath("B.y"); !ok {
		t.Errorf("root type B lost:\n%s", s.String())
	}
}

func TestParseXSDRecursiveType(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <complexType name="Part">
  <sequence>
   <element name="name" type="string"/>
   <element name="sub" type="Part"/>
  </sequence>
 </complexType>
</schema>`
	s, err := ParseXSD("rec", []byte(src))
	if err != nil {
		t.Fatalf("recursive type should degrade gracefully: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("recursive import produced invalid graph: %v", err)
	}
}

func TestParseXSDErrors(t *testing.T) {
	cases := []string{
		`not xml at all <<<`,
		`<schema xmlns="http://www.w3.org/2001/XMLSchema"></schema>`,                                                                 // no content
		`<schema xmlns="http://www.w3.org/2001/XMLSchema"><complexType/></schema>`,                                                   // unnamed top type
		`<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="a" type="Missing2"/><complexType name="Missing"/></schema>`, // dangling... type ref is simple, fine
	}
	for i, src := range cases[:3] {
		if _, err := ParseXSD("x", []byte(src)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Duplicate type names.
	dup := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <complexType name="A"/><complexType name="A"/></schema>`
	if _, err := ParseXSD("x", []byte(dup)); err == nil {
		t.Error("duplicate complexType should fail")
	}
}

func TestParseXSDUnknownTypeRefIsLeaf(t *testing.T) {
	// A type attribute that names no local complexType is treated as a
	// simple type (external or builtin).
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="a" type="ext:Whatever"/>
</schema>`
	s, err := ParseXSD("x", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.FindPath("a")
	if !ok || !p.Leaf().IsLeaf() {
		t.Error("unknown type ref should become a leaf")
	}
	if p.Leaf().TypeName != "ext:Whatever" {
		t.Errorf("type = %s", p.Leaf().TypeName)
	}
}

func TestRoundTripThroughMatchKeys(t *testing.T) {
	// The two Figure 1 imports must be directly matchable: stable,
	// distinct path keys.
	s1, err := ParseSQL("PO1", figure1DDL)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseXSD("PO2", []byte(figure1XSD))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range s1.Paths() {
		if seen[p.String()] {
			t.Errorf("duplicate PO1 key %s", p)
		}
		seen[p.String()] = true
	}
	seen = make(map[string]bool)
	for _, p := range s2.Paths() {
		if seen[p.String()] {
			t.Errorf("duplicate PO2 key %s", p)
		}
		seen[p.String()] = true
	}
	if strings.Count(s2.String(), "Address") != 2 {
		t.Error("shared fragment rendering changed")
	}
}
