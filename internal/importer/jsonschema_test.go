package importer

import (
	"testing"

	"repro/internal/schema"
)

const poJSONSchema = `{
  "title": "PurchaseOrder",
  "type": "object",
  "properties": {
    "orderNumber": {"type": "string"},
    "orderDate":   {"type": "string"},
    "shipTo":      {"$ref": "#/definitions/Address"},
    "billTo":      {"$ref": "#/definitions/Address"},
    "lines": {
      "type": "array",
      "items": {
        "type": "object",
        "properties": {
          "sku":      {"type": "string"},
          "quantity": {"type": "integer"},
          "price":    {"type": "number"}
        }
      }
    }
  },
  "definitions": {
    "Address": {
      "type": "object",
      "properties": {
        "street": {"type": "string"},
        "city":   {"type": "string"},
        "zip":    {"type": "string"}
      }
    }
  }
}`

func TestParseJSONSchema(t *testing.T) {
	s, err := ParseJSONSchema("po", []byte(poJSONSchema))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"orderNumber",
		"shipTo.Address.city",
		"billTo.Address.city",
		"lines.line.quantity",
	} {
		if _, ok := s.FindPath(want); !ok {
			t.Errorf("missing path %s\n%s", want, s.String())
		}
	}
	// Address is a shared fragment: one node, two contexts.
	addrCount := 0
	for _, n := range s.Nodes() {
		if n.Name == "Address" {
			addrCount++
		}
	}
	if addrCount != 1 {
		t.Errorf("Address nodes = %d, want 1 (shared)", addrCount)
	}
	qty, _ := s.FindPath("lines.line.quantity")
	if qty.Leaf().TypeName != "integer" {
		t.Errorf("quantity type = %s", qty.Leaf().TypeName)
	}
	st := schema.ComputeStats(s)
	if st.Paths <= st.Nodes {
		t.Error("shared Address should make paths > nodes")
	}
}

func TestParseJSONSchemaDefs(t *testing.T) {
	src := `{
	  "type": "object",
	  "properties": {"contact": {"$ref": "#/$defs/Contact"}},
	  "$defs": {"Contact": {"type": "object", "properties": {"email": {"type": "string"}}}}
	}`
	s, err := ParseJSONSchema("d", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FindPath("contact.Contact.email"); !ok {
		t.Errorf("missing $defs path:\n%s", s.String())
	}
}

func TestParseJSONSchemaRecursive(t *testing.T) {
	src := `{
	  "type": "object",
	  "properties": {"part": {"$ref": "#/definitions/Part"}},
	  "definitions": {
	    "Part": {
	      "type": "object",
	      "properties": {
	        "name": {"type": "string"},
	        "sub":  {"$ref": "#/definitions/Part"}
	      }
	    }
	  }
	}`
	s, err := ParseJSONSchema("rec", []byte(src))
	if err != nil {
		t.Fatalf("recursive definition should degrade gracefully: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
}

func TestParseJSONSchemaErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"type":"object","properties":{}}`, // no content
		`{"type":"object","properties":{"a":{"$ref":"#/definitions/Missing"}}}`, // dangling ref
		`{"type":"object","properties":{"a":{"$ref":"http://x/y"}}}`,            // remote ref
	}
	for _, src := range cases {
		if _, err := ParseJSONSchema("x", []byte(src)); err == nil {
			t.Errorf("ParseJSONSchema(%q) should fail", src)
		}
	}
}

func TestParseJSONSchemaUntypedProperty(t *testing.T) {
	src := `{"type":"object","properties":{"anything": {}}}`
	s, err := ParseJSONSchema("u", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.FindPath("anything")
	if !ok || p.Leaf().TypeName != "string" {
		t.Error("untyped property should default to string leaf")
	}
}

func TestItemName(t *testing.T) {
	cases := map[string]string{
		"lines":      "line",
		"categories": "category",
		"x":          "xItem",
	}
	for in, want := range cases {
		if got := itemName(in); got != want {
			t.Errorf("itemName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJSONSchemaMatchableAgainstXSD(t *testing.T) {
	// Cross-format matching: the JSON PO against the Figure 1 XSD.
	js, err := ParseJSONSchema("po", []byte(poJSONSchema))
	if err != nil {
		t.Fatal(err)
	}
	xs, err := ParseXSD("PO2", []byte(figure1XSD))
	if err != nil {
		t.Fatal(err)
	}
	if js.Name == "" || xs.Name == "" {
		t.Fatal("names lost")
	}
	// Just shape: both importable and traversable with unique keys.
	seen := map[string]bool{}
	for _, p := range js.Paths() {
		if seen[p.String()] {
			t.Fatalf("duplicate key %s", p)
		}
		seen[p.String()] = true
	}
}
