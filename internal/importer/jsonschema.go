package importer

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
)

// ParseJSONSchema imports a JSON Schema document — the "additional
// schema types" direction of the paper's future work. Object properties
// become containment children, primitive types become typed leaves, and
// $ref references to definitions become shared fragments (one node,
// multiple paths), exactly like XSD type references.
//
// Supported keywords: type, properties, items, definitions, $defs,
// $ref (local "#/definitions/..." and "#/$defs/..." only), title.
// Property order follows the source document where possible; since
// encoding/json does not preserve object order, properties are sorted
// by name for deterministic output.
func ParseJSONSchema(name string, src []byte) (*schema.Schema, error) {
	var doc jsonNode
	if err := json.Unmarshal(src, &doc); err != nil {
		return nil, fmt.Errorf("jsonschema: %w", err)
	}
	b := &jsonBuilder{
		defs:     map[string]*jsonNode{},
		nodes:    map[string]*schema.Node{},
		building: map[string]bool{},
	}
	for _, defs := range []map[string]jsonNode{doc.Definitions, doc.Defs} {
		for defName := range defs {
			def := defs[defName]
			if _, dup := b.defs[defName]; dup {
				return nil, fmt.Errorf("jsonschema: duplicate definition %q", defName)
			}
			b.defs[defName] = &def
		}
	}
	out := schema.New(name)
	children, err := b.children(&doc)
	if err != nil {
		return nil, err
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("jsonschema: schema %q has no object properties", name)
	}
	for _, c := range children {
		out.Root.AddChild(c)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// jsonNode is the subset of JSON Schema this importer understands.
type jsonNode struct {
	Type        string              `json:"type"`
	Title       string              `json:"title"`
	Ref         string              `json:"$ref"`
	Properties  map[string]jsonNode `json:"properties"`
	Items       *jsonNode           `json:"items"`
	Definitions map[string]jsonNode `json:"definitions"`
	Defs        map[string]jsonNode `json:"$defs"`
}

type jsonBuilder struct {
	defs     map[string]*jsonNode
	nodes    map[string]*schema.Node // shared definition nodes
	building map[string]bool
}

// refName extracts the definition name from a local $ref.
func refName(ref string) (string, bool) {
	for _, prefix := range []string{"#/definitions/", "#/$defs/"} {
		if strings.HasPrefix(ref, prefix) {
			return ref[len(prefix):], true
		}
	}
	return "", false
}

// children builds the child nodes for an object node's properties, in
// name order.
func (b *jsonBuilder) children(n *jsonNode) ([]*schema.Node, error) {
	names := make([]string, 0, len(n.Properties))
	for p := range n.Properties {
		names = append(names, p)
	}
	sort.Strings(names)
	out := make([]*schema.Node, 0, len(names))
	for _, p := range names {
		prop := n.Properties[p]
		node, err := b.propertyNode(p, &prop)
		if err != nil {
			return nil, err
		}
		out = append(out, node)
	}
	return out, nil
}

func (b *jsonBuilder) propertyNode(name string, n *jsonNode) (*schema.Node, error) {
	node := schema.NewNode(name)
	switch {
	case n.Ref != "":
		def, ok := refName(n.Ref)
		if !ok {
			return nil, fmt.Errorf("jsonschema: unsupported $ref %q (only local definitions)", n.Ref)
		}
		shared, err := b.defNode(def)
		if err != nil {
			return nil, err
		}
		node.Kind = schema.ElemComplex
		node.AddChild(shared)
	case n.Type == "object" || len(n.Properties) > 0:
		node.Kind = schema.ElemComplex
		kids, err := b.children(n)
		if err != nil {
			return nil, err
		}
		for _, k := range kids {
			node.AddChild(k)
		}
	case n.Type == "array":
		node.Kind = schema.ElemComplex
		if n.Items != nil {
			item, err := b.propertyNode(itemName(name), n.Items)
			if err != nil {
				return nil, err
			}
			node.AddChild(item)
		}
	default:
		node.Kind = schema.ElemSimple
		node.TypeName = n.Type
		if node.TypeName == "" {
			node.TypeName = "string"
		}
	}
	return node, nil
}

// defNode returns the shared node for a named definition.
func (b *jsonBuilder) defNode(name string) (*schema.Node, error) {
	if n, ok := b.nodes[name]; ok {
		return n, nil
	}
	def, ok := b.defs[name]
	if !ok {
		return nil, fmt.Errorf("jsonschema: unresolved $ref to %q", name)
	}
	if b.building[name] {
		// Recursive definition: break with a typed leaf.
		return &schema.Node{Name: name, TypeName: name, Kind: schema.ElemComplex}, nil
	}
	b.building[name] = true
	defer delete(b.building, name)
	node, err := b.propertyNode(name, def)
	if err != nil {
		return nil, err
	}
	b.nodes[name] = node
	return node, nil
}

// itemName derives a singular element name for array items: "items" of
// property "lines" becomes "line".
func itemName(plural string) string {
	switch {
	case strings.HasSuffix(plural, "ies"):
		return plural[:len(plural)-3] + "y"
	case strings.HasSuffix(plural, "s") && len(plural) > 1:
		return plural[:len(plural)-1]
	default:
		return plural + "Item"
	}
}
