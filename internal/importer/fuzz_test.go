package importer

import (
	"strings"
	"testing"
)

// The fuzz targets assert robustness invariants: the importers must
// never panic, and every successfully imported schema must pass
// Validate. Under plain `go test` the seed corpus runs as regression
// cases; `go test -fuzz=FuzzParseSQL` explores further.

func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		figure1DDL,
		"CREATE TABLE t (a INT)",
		"CREATE TABLE t (a INT, b VARCHAR(10) NOT NULL, PRIMARY KEY (a));",
		"CREATE TABLE a (x INT REFERENCES b (y)); CREATE TABLE b (y INT);",
		"-- only a comment",
		"CREATE TABLE \"q t\" (`c 1` INT);",
		"CREATE INDEX i ON t (a); CREATE TABLE t (a INT);",
		"CREATE TABLE t (a DECIMAL(10,2) DEFAULT 0 UNIQUE AUTO_INCREMENT);",
		"CREATE TABLE t (a INT, UNIQUE (a), CHECK (a > 0), CONSTRAINT c FOREIGN KEY (a) REFERENCES t2);",
		"((((",
		"CREATE TABLE",
		"CREATE TABLE t (",
		"'unterminated",
		"/* unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSQL("fuzz", src)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("imported invalid schema from %q: %v", src, err)
		}
	})
}

func FuzzParseXSD(f *testing.F) {
	seeds := []string{
		figure1XSD,
		`<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="a" type="string"/></schema>`,
		`<schema><complexType name="A"><sequence><element name="x" type="A"/></sequence></complexType></schema>`,
		`<schema><complexType name="A"/><complexType name="B"/></schema>`,
		`<not-xsd/>`,
		`garbage`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseXSD("fuzz", []byte(src))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("imported invalid schema from %q: %v", src, err)
		}
	})
}

func FuzzParseDTD(f *testing.F) {
	seeds := []string{
		poDTD,
		"<!ELEMENT a EMPTY>",
		"<!ELEMENT a (b, c?)> <!ELEMENT b (#PCDATA)> <!ELEMENT c ANY>",
		"<!ELEMENT part (name, part?)> <!ELEMENT name (#PCDATA)>",
		"<!ATTLIST a x CDATA #REQUIRED> <!ELEMENT a EMPTY>",
		"<!-- just a comment -->",
		"<!ELEMENT",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseDTD("fuzz", []byte(src))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("imported invalid schema from %q: %v", src, err)
		}
	})
}

func FuzzParseJSONSchema(f *testing.F) {
	seeds := []string{
		poJSONSchema,
		`{"type":"object","properties":{"a":{"type":"string"}}}`,
		`{"type":"object","properties":{"p":{"$ref":"#/definitions/X"}},"definitions":{"X":{"type":"object","properties":{"q":{"$ref":"#/definitions/X"}}}}}`,
		`{"properties":{"arr":{"type":"array","items":{"type":"integer"}}}}`,
		`{}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseJSONSchema("fuzz", []byte(src))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("imported invalid schema from %q: %v", src, err)
		}
		// Path keys must be non-empty and enumerable.
		for _, p := range s.Paths() {
			if strings.TrimSpace(p.String()) == "" {
				t.Fatalf("empty path key from %q", src)
			}
		}
	})
}
