package importer

import "testing"

func BenchmarkParseSQL(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSQL("PO1", figure1DDL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseXSD(b *testing.B) {
	src := []byte(figure1XSD)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseXSD("PO2", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseJSONSchema(b *testing.B) {
	src := []byte(poJSONSchema)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseJSONSchema("po", src); err != nil {
			b.Fatal(err)
		}
	}
}
