package importer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
)

// ParseDTD imports a Document Type Definition, the schema formalism
// most XML message formats of the paper's era used. Supported
// declarations:
//
//	<!ELEMENT name (child1, child2*, child3?)>  content model (sequence/choice)
//	<!ELEMENT name (#PCDATA)>                   text leaf
//	<!ELEMENT name EMPTY>                       empty leaf
//	<!ELEMENT name ANY>                         leaf of unknown content
//	<!ATTLIST name attr CDATA #REQUIRED ...>    attributes become leaves
//
// Element references are resolved by name; an element referenced from
// several content models becomes a shared fragment (one node, multiple
// paths). Elements never referenced become root children. Occurrence
// indicators (?, *, +) and choice separators (|) are accepted and
// ignored for graph construction. Parameter entities are not supported.
func ParseDTD(name string, src []byte) (*schema.Schema, error) {
	decls, attrs, err := scanDTD(string(src))
	if err != nil {
		return nil, err
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd: no ELEMENT declarations")
	}
	b := &dtdBuilder{
		decls:    decls,
		attrs:    attrs,
		nodes:    make(map[string]*schema.Node),
		building: make(map[string]bool),
	}
	referenced := make(map[string]bool)
	for _, d := range decls {
		for _, c := range d.children {
			if c != d.name {
				referenced[c] = true
			}
		}
	}
	out := schema.New(name)
	var roots []*dtdDecl
	for _, d := range decls {
		if !referenced[d.name] {
			roots = append(roots, d)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].order < roots[j].order })
	for _, d := range roots {
		n, err := b.node(d.name)
		if err != nil {
			return nil, err
		}
		out.Root.AddChild(n)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("dtd: every element is referenced; no document root")
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// dtdDecl is one parsed ELEMENT declaration.
type dtdDecl struct {
	name     string
	children []string // referenced element names, in order
	pcdata   bool
	order    int // declaration order, for deterministic roots
}

// scanDTD extracts ELEMENT and ATTLIST declarations.
func scanDTD(src string) (map[string]*dtdDecl, map[string][]string, error) {
	decls := make(map[string]*dtdDecl)
	attrs := make(map[string][]string)
	order := 0
	rest := src
	for {
		start := strings.Index(rest, "<!")
		if start < 0 {
			break
		}
		end := strings.IndexByte(rest[start:], '>')
		if end < 0 {
			return nil, nil, fmt.Errorf("dtd: unterminated declaration near %q", clip(rest[start:]))
		}
		decl := rest[start+2 : start+end]
		rest = rest[start+end+1:]
		order++
		switch {
		case strings.HasPrefix(decl, "ELEMENT"):
			d, err := parseElementDecl(decl)
			if err != nil {
				return nil, nil, err
			}
			if _, dup := decls[d.name]; dup {
				return nil, nil, fmt.Errorf("dtd: duplicate ELEMENT %q", d.name)
			}
			d.order = order
			decls[d.name] = d
		case strings.HasPrefix(decl, "ATTLIST"):
			fields := strings.Fields(decl)
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("dtd: malformed ATTLIST %q", clip(decl))
			}
			elem := fields[1]
			// Attribute declarations come in triples: name type default.
			for i := 2; i+1 < len(fields); i += 3 {
				attrs[elem] = append(attrs[elem], fields[i])
			}
		case strings.HasPrefix(decl, "--") || strings.HasPrefix(decl, "ENTITY") || strings.HasPrefix(decl, "NOTATION"):
			// Comments and unsupported declarations: skip.
		}
	}
	return decls, attrs, nil
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

func parseElementDecl(decl string) (*dtdDecl, error) {
	body := strings.TrimSpace(strings.TrimPrefix(decl, "ELEMENT"))
	sp := strings.IndexFunc(body, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' })
	if sp < 0 {
		return nil, fmt.Errorf("dtd: ELEMENT without content model: %q", clip(decl))
	}
	d := &dtdDecl{name: body[:sp]}
	model := strings.TrimSpace(body[sp:])
	switch {
	case strings.EqualFold(model, "EMPTY"), strings.EqualFold(model, "ANY"):
		return d, nil
	}
	if !strings.HasPrefix(model, "(") {
		return nil, fmt.Errorf("dtd: element %q: unsupported content model %q", d.name, clip(model))
	}
	inner := strings.Trim(model, "()*+? \t\n\r")
	for _, part := range strings.FieldsFunc(inner, func(r rune) bool {
		return r == ',' || r == '|' || r == '(' || r == ')'
	}) {
		part = strings.Trim(strings.TrimSpace(part), "*+?")
		if part == "" {
			continue
		}
		if part == "#PCDATA" {
			d.pcdata = true
			continue
		}
		d.children = append(d.children, part)
	}
	return d, nil
}

type dtdBuilder struct {
	decls    map[string]*dtdDecl
	attrs    map[string][]string
	nodes    map[string]*schema.Node
	building map[string]bool
}

func (b *dtdBuilder) node(name string) (*schema.Node, error) {
	if n, ok := b.nodes[name]; ok {
		return n, nil
	}
	if b.building[name] {
		// Recursive content model: break the cycle with a leaf.
		return &schema.Node{Name: name, TypeName: name, Kind: schema.ElemComplex}, nil
	}
	b.building[name] = true
	defer delete(b.building, name)
	d := b.decls[name]
	n := schema.NewNode(name)
	if d == nil {
		// Referenced but undeclared: permissive leaf.
		n.TypeName = "#PCDATA"
		n.Kind = schema.ElemSimple
		return n, nil
	}
	for _, attr := range b.attrs[name] {
		n.AddChild(&schema.Node{Name: attr, TypeName: "CDATA", Kind: schema.ElemSimple})
	}
	for _, c := range d.children {
		child, err := b.node(c)
		if err != nil {
			return nil, err
		}
		n.AddChild(child)
	}
	if n.IsLeaf() {
		n.Kind = schema.ElemSimple
		if d.pcdata {
			n.TypeName = "#PCDATA"
		}
	} else {
		n.Kind = schema.ElemComplex
	}
	b.nodes[name] = n
	return n, nil
}
