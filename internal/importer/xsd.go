package importer

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/schema"
)

// ParseXSD imports an XML schema. Complex types become inner nodes;
// elements typed with a named complex type reference that type's node
// as a shared fragment (one node, multiple paths), exactly like the
// Address type of the paper's Figure 1. Elements and attributes with
// simple types become leaves carrying their declared type.
//
// Root determination: global xsd:element declarations become root
// children. If the schema declares none, the complex types that are not
// referenced by any other type form the schema content; a single such
// type contributes its children directly to the root (Figure 1b shows
// PO2's sequence elements directly under the PO2 root), several become
// root children themselves.
func ParseXSD(name string, src []byte) (*schema.Schema, error) {
	var doc xsdSchema
	if err := xml.Unmarshal(src, &doc); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	b := &xsdBuilder{
		types:    make(map[string]*xsdComplexType),
		nodes:    make(map[string]*schema.Node),
		building: make(map[string]bool),
	}
	for i := range doc.ComplexTypes {
		ct := &doc.ComplexTypes[i]
		if ct.Name == "" {
			return nil, fmt.Errorf("xsd: top-level complexType without name")
		}
		if _, dup := b.types[ct.Name]; dup {
			return nil, fmt.Errorf("xsd: duplicate complexType %q", ct.Name)
		}
		b.types[ct.Name] = ct
	}

	out := schema.New(name)
	if len(doc.Elements) > 0 {
		for i := range doc.Elements {
			n, err := b.elementNode(&doc.Elements[i])
			if err != nil {
				return nil, err
			}
			out.Root.AddChild(n)
		}
	} else {
		roots := b.unreferencedTypes(doc.ComplexTypes)
		if len(roots) == 0 {
			return nil, fmt.Errorf("xsd: schema %q has no global elements and no root complexType", name)
		}
		if len(roots) == 1 {
			// The single root type is the schema content.
			children, err := b.typeChildren(roots[0])
			if err != nil {
				return nil, err
			}
			for _, c := range children {
				out.Root.AddChild(c)
			}
		} else {
			for _, ct := range roots {
				n, err := b.typeNode(ct.Name)
				if err != nil {
					return nil, err
				}
				out.Root.AddChild(n)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- XML document shape ------------------------------------------------------

type xsdSchema struct {
	XMLName      xml.Name         `xml:"schema"`
	Elements     []xsdElement     `xml:"element"`
	ComplexTypes []xsdComplexType `xml:"complexType"`
}

type xsdElement struct {
	Name        string          `xml:"name,attr"`
	Ref         string          `xml:"ref,attr"`
	Type        string          `xml:"type,attr"`
	ComplexType *xsdComplexType `xml:"complexType"`
}

type xsdComplexType struct {
	Name       string         `xml:"name,attr"`
	Sequence   *xsdParticle   `xml:"sequence"`
	All        *xsdParticle   `xml:"all"`
	Choice     *xsdParticle   `xml:"choice"`
	Attributes []xsdAttribute `xml:"attribute"`
}

type xsdParticle struct {
	Elements []xsdElement `xml:"element"`
}

type xsdAttribute struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// --- builder -----------------------------------------------------------------

type xsdBuilder struct {
	types    map[string]*xsdComplexType
	nodes    map[string]*schema.Node // complexType name → shared node
	building map[string]bool         // cycle guard
}

// localName strips a namespace prefix like "xsd:".
func localName(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// isComplexRef reports whether a type attribute names a user-defined
// complex type of this document.
func (b *xsdBuilder) isComplexRef(typ string) bool {
	_, ok := b.types[localName(typ)]
	return ok
}

// elementNode builds the node for one element declaration.
func (b *xsdBuilder) elementNode(e *xsdElement) (*schema.Node, error) {
	name := e.Name
	if name == "" && e.Ref != "" {
		name = localName(e.Ref)
	}
	if name == "" {
		return nil, fmt.Errorf("xsd: element without name or ref")
	}
	n := schema.NewNode(name)
	switch {
	case e.ComplexType != nil:
		n.Kind = schema.ElemComplex
		children, err := b.typeChildren(e.ComplexType)
		if err != nil {
			return nil, err
		}
		for _, c := range children {
			n.AddChild(c)
		}
	case e.Type != "" && b.isComplexRef(e.Type):
		n.Kind = schema.ElemComplex
		typeNode, err := b.typeNode(localName(e.Type))
		if err != nil {
			return nil, err
		}
		// Shared fragment: the type's node is a child of every element
		// that uses it (Figure 1b: DeliverTo → Address ← BillTo).
		n.AddChild(typeNode)
	default:
		n.Kind = schema.ElemSimple
		n.TypeName = e.Type
	}
	return n, nil
}

// typeNode returns the shared node for a named complex type, building
// it on first use.
func (b *xsdBuilder) typeNode(name string) (*schema.Node, error) {
	if n, ok := b.nodes[name]; ok {
		return n, nil
	}
	ct, ok := b.types[name]
	if !ok {
		return nil, fmt.Errorf("xsd: unknown complexType %q", name)
	}
	if b.building[name] {
		// Recursive type: break the cycle with a leaf reference.
		return &schema.Node{Name: name, TypeName: name, Kind: schema.ElemComplex}, nil
	}
	b.building[name] = true
	defer delete(b.building, name)
	n := schema.NewNode(name)
	n.Kind = schema.ElemComplex
	children, err := b.typeChildren(ct)
	if err != nil {
		return nil, err
	}
	for _, c := range children {
		n.AddChild(c)
	}
	b.nodes[name] = n
	return n, nil
}

// typeChildren builds the child nodes of a complex type's content model
// (sequence/all/choice elements, then attributes).
func (b *xsdBuilder) typeChildren(ct *xsdComplexType) ([]*schema.Node, error) {
	var out []*schema.Node
	for _, particle := range []*xsdParticle{ct.Sequence, ct.All, ct.Choice} {
		if particle == nil {
			continue
		}
		for i := range particle.Elements {
			n, err := b.elementNode(&particle.Elements[i])
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
	}
	for _, a := range ct.Attributes {
		if a.Name == "" {
			continue
		}
		out = append(out, &schema.Node{Name: a.Name, TypeName: a.Type, Kind: schema.ElemSimple})
	}
	return out, nil
}

// unreferencedTypes returns the complex types not referenced by any
// element of any other type, in declaration order.
func (b *xsdBuilder) unreferencedTypes(all []xsdComplexType) []*xsdComplexType {
	referenced := make(map[string]bool)
	var scan func(ct *xsdComplexType, self string)
	var scanElem func(e *xsdElement, self string)
	scanElem = func(e *xsdElement, self string) {
		if e.Type != "" {
			ln := localName(e.Type)
			if ln != self && b.isComplexRef(e.Type) {
				referenced[ln] = true
			}
		}
		if e.ComplexType != nil {
			scan(e.ComplexType, self)
		}
	}
	scan = func(ct *xsdComplexType, self string) {
		for _, particle := range []*xsdParticle{ct.Sequence, ct.All, ct.Choice} {
			if particle == nil {
				continue
			}
			for i := range particle.Elements {
				scanElem(&particle.Elements[i], self)
			}
		}
	}
	for i := range all {
		scan(&all[i], all[i].Name)
	}
	var out []*xsdComplexType
	for i := range all {
		if !referenced[all[i].Name] {
			out = append(out, &all[i])
		}
	}
	return out
}
