package combine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simcube"
)

func cube2x2(layers ...[4]float64) *simcube.Cube {
	c := simcube.NewCube([]string{"r0", "r1"}, []string{"c0", "c1"})
	for k, l := range layers {
		m := c.NewLayer(string(rune('A' + k)))
		m.Set(0, 0, l[0])
		m.Set(0, 1, l[1])
		m.Set(1, 0, l[2])
		m.Set(1, 1, l[3])
	}
	return c
}

func TestAggregationStrategies(t *testing.T) {
	c := cube2x2([4]float64{0.8, 0.2, 0.4, 1.0}, [4]float64{0.4, 0.6, 0.4, 0.0})
	cases := []struct {
		spec AggSpec
		want [4]float64
	}{
		{AggSpec{Kind: Max}, [4]float64{0.8, 0.6, 0.4, 1.0}},
		{AggSpec{Kind: Min}, [4]float64{0.4, 0.2, 0.4, 0.0}},
		{AggSpec{Kind: Average}, [4]float64{0.6, 0.4, 0.4, 0.5}},
		{AggSpec{Kind: Weighted, Weights: []float64{0.3, 0.7}}, [4]float64{0.52, 0.48, 0.4, 0.3}},
	}
	for _, cse := range cases {
		m, err := cse.spec.Apply(c)
		if err != nil {
			t.Fatalf("%s: %v", cse.spec, err)
		}
		got := [4]float64{m.Get(0, 0), m.Get(0, 1), m.Get(1, 0), m.Get(1, 1)}
		for i := range got {
			if math.Abs(got[i]-cse.want[i]) > 1e-9 {
				t.Errorf("%s cell %d = %.3f, want %.3f", cse.spec, i, got[i], cse.want[i])
			}
		}
	}
}

func TestWeightedErrors(t *testing.T) {
	c := cube2x2([4]float64{1, 0, 0, 1})
	if _, err := (AggSpec{Kind: Weighted, Weights: []float64{0.3, 0.7}}).Apply(c); err == nil {
		t.Error("weight count mismatch should fail")
	}
	if _, err := (AggSpec{Kind: Weighted, Weights: []float64{-1}}).Apply(c); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := (AggSpec{Kind: Weighted, Weights: []float64{0}}).Apply(c); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := (AggSpec{Kind: Aggregation(42)}).Apply(c); err == nil {
		t.Error("unknown aggregation should fail")
	}
}

func TestWeightedNormalization(t *testing.T) {
	c := cube2x2([4]float64{1, 0, 0, 0}, [4]float64{0, 0, 0, 0})
	// Weights 3 and 7 behave like 0.3/0.7.
	m, err := (AggSpec{Kind: Weighted, Weights: []float64{3, 7}}).Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get(0, 0); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("normalized weighted = %.3f, want 0.3", got)
	}
}

// table2Matrix reproduces Table 2's aggregated column for
// PO2.DeliverTo.Address.City against three PO1 elements.
func table2Matrix() *simcube.Matrix {
	rows := []string{"ShipTo.shipToCity", "Customer.custCity", "ShipTo.shipToStreet"}
	m := simcube.NewMatrix(rows, []string{"DeliverTo.Address.City"})
	m.Set(0, 0, 0.72) // average of 0.65 and 0.78 (rounded like Table 2)
	m.Set(1, 0, 0.67)
	m.Set(2, 0, 0.52)
	return m
}

func TestSelectionMaxN(t *testing.T) {
	m := table2Matrix()
	got := SelectColwise(m, Selection{MaxN: 1})
	if got.Len() != 1 || !got.Contains("ShipTo.shipToCity", "DeliverTo.Address.City") {
		t.Fatalf("MaxN(1) selected %v", got.Correspondences())
	}
	got = SelectColwise(m, Selection{MaxN: 2})
	if got.Len() != 2 || !got.Contains("Customer.custCity", "DeliverTo.Address.City") {
		t.Fatalf("MaxN(2) selected %v", got.Correspondences())
	}
}

func TestSelectionThreshold(t *testing.T) {
	m := table2Matrix()
	got := SelectColwise(m, Selection{Threshold: 0.6})
	if got.Len() != 2 {
		t.Fatalf("Thr(0.6) selected %d", got.Len())
	}
	// Threshold is strict (exceeding t).
	got = SelectColwise(m, Selection{Threshold: 0.72})
	if got.Len() != 0 {
		t.Fatalf("Thr(0.72) should exclude the 0.72 candidate, got %d", got.Len())
	}
}

func TestSelectionDelta(t *testing.T) {
	m := table2Matrix()
	// 0.67 is within 10% of 0.72 (0.72*0.9 = 0.648), 0.52 is not.
	got := SelectColwise(m, Selection{Delta: 0.1})
	if got.Len() != 2 {
		t.Fatalf("Delta(0.1) selected %d", got.Len())
	}
	got = SelectColwise(m, Selection{Delta: 0.02})
	if got.Len() != 1 {
		t.Fatalf("Delta(0.02) selected %d", got.Len())
	}
}

func TestSelectionConjunction(t *testing.T) {
	m := table2Matrix()
	got := SelectColwise(m, Selection{Threshold: 0.7, MaxN: 2})
	if got.Len() != 1 {
		t.Fatalf("Thr(0.7)+MaxN(2) selected %d", got.Len())
	}
	// High threshold kills everything despite MaxN.
	got = SelectColwise(m, Selection{Threshold: 0.9, MaxN: 1})
	if got.Len() != 0 {
		t.Fatal("Thr(0.9)+MaxN(1) should be empty")
	}
}

func TestSelectionIgnoresZeroSims(t *testing.T) {
	m := simcube.NewMatrix([]string{"a", "b"}, []string{"x"})
	// All-zero column: MaxN(1) must not invent a candidate.
	got := SelectColwise(m, Selection{MaxN: 1})
	if got.Len() != 0 {
		t.Fatalf("zero sims selected %v", got.Correspondences())
	}
}

func TestSelectRowwise(t *testing.T) {
	m := simcube.NewMatrix([]string{"a"}, []string{"x", "y"})
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.8)
	got := SelectRowwise(m, Selection{MaxN: 1})
	if got.Len() != 1 || !got.Contains("a", "x") {
		t.Fatalf("rowwise selected %v", got.Correspondences())
	}
}

func TestDirectionBoth(t *testing.T) {
	// a prefers x; x prefers b — Both must reject (a,x) and accept
	// nothing for x except via mutual agreement.
	m := simcube.NewMatrix([]string{"a", "b"}, []string{"x", "y"})
	m.Set(0, 0, 0.8) // a-x
	m.Set(1, 0, 0.9) // b-x (x's best)
	m.Set(0, 1, 0.7) // a-y (y's best, a's second)
	m.Set(1, 1, 0.1)
	both := Select(m, Both, Selection{MaxN: 1})
	if !both.Contains("b", "x") {
		t.Error("mutual best (b,x) missing")
	}
	if both.Contains("a", "x") {
		t.Error("(a,x) selected although x prefers b")
	}
	// a's best is x, so (a,y) fails the rowwise direction too.
	if both.Contains("a", "y") {
		t.Error("(a,y) selected although a prefers x")
	}
}

func TestDirectionLargeSmall(t *testing.T) {
	// 3 rows (S1, larger) x 1 col (S2, smaller): LargeSmall selects S1
	// candidates per S2 element.
	m := table2Matrix()
	ls := Select(m, LargeSmall, Selection{MaxN: 1})
	if ls.Len() != 1 || !ls.Contains("ShipTo.shipToCity", "DeliverTo.Address.City") {
		t.Fatalf("LargeSmall = %v", ls.Correspondences())
	}
	// SmallLarge selects an S2 candidate per S1 element: every S1
	// element gets the single S2 element.
	sl := Select(m, SmallLarge, Selection{MaxN: 1})
	if sl.Len() != 3 {
		t.Fatalf("SmallLarge = %d pairs, want 3", sl.Len())
	}
}

func TestDirectionSizeDetection(t *testing.T) {
	// When S2 (cols) is larger, LargeSmall must rank S2 per S1 element.
	m := simcube.NewMatrix([]string{"a"}, []string{"x", "y", "z"})
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.8)
	m.Set(0, 2, 0.7)
	ls := Select(m, LargeSmall, Selection{MaxN: 1})
	if ls.Len() != 1 || !ls.Contains("a", "x") {
		t.Fatalf("LargeSmall with larger S2 = %v", ls.Correspondences())
	}
	sl := Select(m, SmallLarge, Selection{MaxN: 1})
	if sl.Len() != 3 {
		t.Fatalf("SmallLarge with larger S2 = %d, want 3", sl.Len())
	}
}

// TestCombinedSimilarityFigure7 reproduces the worked example of
// Figure 7: |S1|=4, |S2|=3, three matched pairs with sims 1.0, 0.8, 0.8.
func TestCombinedSimilarityFigure7(t *testing.T) {
	res := simcube.NewMapping("S1", "S2")
	res.Add("s13", "s21", 1.0)
	res.Add("s12", "s22", 0.8)
	res.Add("s11", "s23", 0.8)
	avg := CombinedSimilarity(CombAverage, 4, 3, res)
	if math.Abs(avg-0.742857) > 1e-3 {
		t.Errorf("Average = %.4f, want 0.74", avg)
	}
	dice := CombinedSimilarity(CombDice, 4, 3, res)
	if math.Abs(dice-0.857142) > 1e-3 {
		t.Errorf("Dice = %.4f, want 0.86", dice)
	}
	if dice <= avg {
		t.Error("Dice should be more optimistic than Average")
	}
}

func TestCombinedSimilarityManualEquality(t *testing.T) {
	// "With all element similarities set to 1.0, both strategies will
	// return the same schema similarity."
	res := simcube.NewMapping("S1", "S2")
	res.Add("a", "x", 1)
	res.Add("b", "y", 1)
	avg := CombinedSimilarity(CombAverage, 3, 3, res)
	dice := CombinedSimilarity(CombDice, 3, 3, res)
	if math.Abs(avg-dice) > 1e-12 {
		t.Errorf("Average %.3f != Dice %.3f for all-1.0 sims", avg, dice)
	}
}

func TestCombinedSimilarityEdge(t *testing.T) {
	if CombinedSimilarity(CombAverage, 0, 0, simcube.NewMapping("a", "b")) != 0 {
		t.Error("empty sets should give 0")
	}
	if CombinedSimilarity(CombSim(9), 1, 1, simcube.NewMapping("a", "b")) != 0 {
		t.Error("unknown strategy should give 0")
	}
}

func TestCombine(t *testing.T) {
	c := cube2x2([4]float64{0.9, 0.1, 0.1, 0.8}, [4]float64{0.7, 0.1, 0.2, 0.6})
	matrix, result, err := Combine(c, Default())
	if err != nil {
		t.Fatal(err)
	}
	if matrix.Get(0, 0) != 0.8 {
		t.Errorf("aggregated (0,0) = %.2f", matrix.Get(0, 0))
	}
	if result.Len() != 2 || !result.Contains("r0", "c0") || !result.Contains("r1", "c1") {
		t.Fatalf("Combine result = %v", result.Correspondences())
	}
}

func TestStrategyStrings(t *testing.T) {
	s := Default()
	if s.String() != "(Average, Both, Thr(0.5)+Delta(0.02), Average)" {
		t.Errorf("Default().String() = %s", s)
	}
	if (Selection{}).String() != "All" {
		t.Error("empty selection should render as All")
	}
	if (Selection{MaxN: 2, Threshold: 0.5}).String() != "Thr(0.5)+MaxN(2)" {
		t.Errorf("selection string = %s", Selection{MaxN: 2, Threshold: 0.5})
	}
	if Direction(9).String() == "" || Aggregation(9).String() == "" || CombSim(9).String() == "" {
		t.Error("unknown enum strings should be non-empty")
	}
	if LargeSmall.String() != "LargeSmall" || SmallLarge.String() != "SmallLarge" || Both.String() != "Both" {
		t.Error("direction names wrong")
	}
}

func TestPropertySelectionSubsetAndRanked(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		rk := make([]string, rows)
		for i := range rk {
			rk[i] = string(rune('a' + i))
		}
		ck := make([]string, cols)
		for j := range ck {
			ck[j] = string(rune('p' + j))
		}
		m := simcube.NewMatrix(rk, ck)
		m.Fill(func(i, j int) float64 { return math.Floor(r.Float64()*100) / 100 })
		sel := Selection{
			MaxN:      r.Intn(3),
			Delta:     float64(r.Intn(10)) / 100,
			Threshold: float64(r.Intn(10)) / 10,
		}
		// Both is a subset of each direction.
		rw := SelectRowwise(m, sel)
		cw := SelectColwise(m, sel)
		both := Select(m, Both, sel)
		for _, c := range both.Correspondences() {
			if !rw.Contains(c.From, c.To) || !cw.Contains(c.From, c.To) {
				return false
			}
			// Every selected sim respects the threshold.
			if sel.Threshold > 0 && c.Sim <= sel.Threshold {
				return false
			}
			if c.Sim <= 0 {
				return false
			}
		}
		// MaxN bound per element.
		if sel.MaxN > 0 {
			for _, k := range rk {
				if len(rw.ByFrom(k)) > sel.MaxN {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAggregationBounds(t *testing.T) {
	// Min <= Average <= Max cell-wise, all within [0,1].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		layers := make([][4]float64, 1+r.Intn(4))
		for i := range layers {
			for j := 0; j < 4; j++ {
				layers[i][j] = r.Float64()
			}
		}
		c := cube2x2(layers...)
		mx, _ := AggSpec{Kind: Max}.Apply(c)
		mn, _ := AggSpec{Kind: Min}.Apply(c)
		av, _ := AggSpec{Kind: Average}.Apply(c)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				lo, hi, mid := mn.Get(i, j), mx.Get(i, j), av.Get(i, j)
				if lo > mid+1e-12 || mid > hi+1e-12 || lo < 0 || hi > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
