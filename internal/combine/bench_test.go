package combine

import (
	"math/rand"
	"testing"

	"repro/internal/simcube"
)

// benchMatrix builds a task-sized (110×75) similarity matrix with
// realistic sparsity.
func benchMatrix() *simcube.Matrix {
	r := rand.New(rand.NewSource(1))
	rows := make([]string, 110)
	for i := range rows {
		rows[i] = "r" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	cols := make([]string, 75)
	for j := range cols {
		cols[j] = "c" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	m := simcube.NewMatrix(rows, cols)
	m.Fill(func(i, j int) float64 {
		if r.Float64() < 0.8 {
			return r.Float64() * 0.3 // mostly weak similarities
		}
		return r.Float64()
	})
	return m
}

func benchCube(layers int) *simcube.Cube {
	m := benchMatrix()
	cube := simcube.NewCube(m.RowKeys(), m.ColKeys())
	for k := 0; k < layers; k++ {
		layer := cube.NewLayer(string(rune('A' + k)))
		layer.Fill(func(i, j int) float64 { return m.Get(i, j) })
	}
	return cube
}

func BenchmarkAggregateAverage5(b *testing.B) {
	cube := benchCube(5)
	spec := AggSpec{Kind: Average}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Apply(cube); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateWeighted5(b *testing.B) {
	cube := benchCube(5)
	spec := AggSpec{Kind: Weighted, Weights: []float64{1, 2, 3, 4, 5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Apply(cube); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectBothMaxN1(b *testing.B) {
	m := benchMatrix()
	sel := Selection{MaxN: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(m, Both, sel)
	}
}

func BenchmarkSelectBothThresholdDelta(b *testing.B) {
	m := benchMatrix()
	sel := Selection{Threshold: 0.5, Delta: 0.02}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(m, Both, sel)
	}
}

func BenchmarkCombinedSimilarity(b *testing.B) {
	m := benchMatrix()
	res := Select(m, Both, Selection{MaxN: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CombinedSimilarity(CombAverage, m.Rows(), m.Cols(), res)
		_ = CombinedSimilarity(CombDice, m.Rows(), m.Cols(), res)
	}
}
