// Package combine implements COMA's framework for combining similarity
// values (Do & Rahm, VLDB 2002, Section 6): aggregation of
// matcher-specific results (Max, Min, Average, Weighted), direction and
// selection of match candidates (LargeSmall, SmallLarge, Both; MaxN,
// MaxDelta, Threshold and their combinations), and computation of a
// combined similarity for element sets (Average, Dice).
//
// The same three-step scheme serves two purposes: deriving the complete
// match result from independent matchers, and — inside hybrid matchers —
// deriving element similarities from the similarities of element
// components (name tokens, children, leaves).
package combine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simcube"
)

// Aggregation identifies a strategy for folding the matcher-specific
// similarity values of one element pair into a combined value.
type Aggregation int

const (
	// Average returns the mean similarity over all matchers, treating
	// them as equally important (special case of Weighted).
	Average Aggregation = iota
	// Max returns the maximal similarity of any matcher: optimistic,
	// lets matchers maximally complement each other.
	Max
	// Min returns the lowest similarity of any matcher: pessimistic.
	Min
	// Weighted returns a weighted sum using per-matcher weights.
	Weighted
)

// String returns the aggregation name as used in the paper.
func (a Aggregation) String() string {
	switch a {
	case Average:
		return "Average"
	case Max:
		return "Max"
	case Min:
		return "Min"
	case Weighted:
		return "Weighted"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// AggSpec is an aggregation strategy instance. Weights are only
// consulted for Weighted and are matched positionally to cube layers;
// they are normalized to sum 1 at application time.
type AggSpec struct {
	Kind    Aggregation
	Weights []float64
}

// String renders the spec, including weights for Weighted.
func (a AggSpec) String() string {
	if a.Kind == Weighted && len(a.Weights) > 0 {
		parts := make([]string, len(a.Weights))
		for i, w := range a.Weights {
			parts[i] = fmt.Sprintf("%.2g", w)
		}
		return "Weighted(" + strings.Join(parts, ",") + ")"
	}
	return a.Kind.String()
}

// Apply folds the cube into a single similarity matrix.
func (a AggSpec) Apply(cube *simcube.Cube) (*simcube.Matrix, error) {
	fold, err := a.Func(cube.Layers())
	if err != nil {
		return nil, err
	}
	return cube.Aggregate(fold), nil
}

// Func returns the per-cell fold of the aggregation over the given
// number of matcher layers: the function receives the layers'
// similarity values for one element pair and returns the aggregated
// value. Exposing the fold lets hybrid matchers aggregate tiny
// per-pair token grids without materializing a cube.
func (a AggSpec) Func(layers int) (func(vals []float64) float64, error) {
	switch a.Kind {
	case Max:
		return func(v []float64) float64 {
			best := 0.0
			for _, x := range v {
				if x > best {
					best = x
				}
			}
			return best
		}, nil
	case Min:
		return func(v []float64) float64 {
			worst := 1.0
			for _, x := range v {
				if x < worst {
					worst = x
				}
			}
			return worst
		}, nil
	case Average:
		return func(v []float64) float64 {
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s / float64(len(v))
		}, nil
	case Weighted:
		if len(a.Weights) != layers {
			return nil, fmt.Errorf("combine: %d weights for %d matchers", len(a.Weights), layers)
		}
		total := 0.0
		for _, w := range a.Weights {
			if w < 0 {
				return nil, fmt.Errorf("combine: negative weight %g", w)
			}
			total += w
		}
		if total == 0 {
			return nil, fmt.Errorf("combine: weights sum to zero")
		}
		norm := make([]float64, len(a.Weights))
		for i, w := range a.Weights {
			norm[i] = w / total
		}
		return func(v []float64) float64 {
			s := 0.0
			for i, x := range v {
				s += norm[i] * x
			}
			return s
		}, nil
	default:
		return nil, fmt.Errorf("combine: unknown aggregation %v", a.Kind)
	}
}

// Direction identifies the match direction strategy (paper Section 6.2).
// The "larger" and "smaller" schema are determined by their element
// (path) counts at selection time.
type Direction int

const (
	// Both considers both directions; a pair is accepted only if it is
	// selected in both (undirectional match).
	Both Direction = iota
	// LargeSmall ranks and selects elements of the larger schema with
	// respect to each element of the smaller target schema.
	LargeSmall
	// SmallLarge ranks and selects elements of the smaller schema for
	// each element of the larger schema.
	SmallLarge
)

// String returns the direction name as used in the paper.
func (d Direction) String() string {
	switch d {
	case Both:
		return "Both"
	case LargeSmall:
		return "LargeSmall"
	case SmallLarge:
		return "SmallLarge"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Selection is a match candidate selection strategy: the conjunction of
// up to three criteria applied to the ranked candidate list of one
// element. Zero fields disable the respective criterion.
//
//   - MaxN keeps the n candidates with maximal similarity.
//   - Delta keeps the maximal candidate plus all candidates whose
//     similarity differs from the maximum by at most the given relative
//     tolerance (MaxDelta with a relative d, as in the evaluation).
//   - Threshold keeps candidates whose similarity exceeds t.
//
// Candidates with similarity 0 are never selected.
type Selection struct {
	MaxN      int
	Delta     float64
	Threshold float64
}

// String renders the selection in the paper's notation, e.g.
// "Thr(0.5)+Delta(0.02)".
func (s Selection) String() string {
	var parts []string
	if s.Threshold > 0 {
		parts = append(parts, fmt.Sprintf("Thr(%.2g)", s.Threshold))
	}
	if s.MaxN > 0 {
		parts = append(parts, fmt.Sprintf("MaxN(%d)", s.MaxN))
	}
	if s.Delta > 0 {
		parts = append(parts, fmt.Sprintf("Delta(%.2g)", s.Delta))
	}
	if len(parts) == 0 {
		return "All"
	}
	return strings.Join(parts, "+")
}

// candidate pairs an element index with its similarity.
type candidate struct {
	idx int
	sim float64
}

// pick applies the selection to one element's candidates. sims[i] is
// the similarity of candidate i; the returned indices are sorted by
// descending similarity (ties by ascending index).
func (s Selection) pick(sims []float64) []int {
	cands := make([]candidate, 0, len(sims))
	for i, v := range sims {
		if v > 0 {
			cands = append(cands, candidate{i, v})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].sim > cands[j].sim })
	best := cands[0].sim
	var out []int
	for rank, c := range cands {
		if s.MaxN > 0 && rank >= s.MaxN {
			break
		}
		if s.Delta > 0 && c.sim < best*(1-s.Delta) {
			break
		}
		if s.Threshold > 0 && c.sim <= s.Threshold {
			if s.MaxN > 0 || s.Delta > 0 {
				break // ranked order: nothing further can pass
			}
			continue
		}
		out = append(out, c.idx)
	}
	return out
}

// SelectRowwise determines, for every row element (S1), its match
// candidates among the column elements (S2).
func SelectRowwise(m *simcube.Matrix, sel Selection) *simcube.Mapping {
	out := simcube.NewMapping("", "")
	sims := make([]float64, m.Cols())
	for i, rk := range m.RowKeys() {
		for j := range sims {
			sims[j] = m.Get(i, j)
		}
		for _, j := range sel.pick(sims) {
			out.Add(rk, m.ColKeys()[j], m.Get(i, j))
		}
	}
	return out
}

// SelectColwise determines, for every column element (S2), its match
// candidates among the row elements (S1).
func SelectColwise(m *simcube.Matrix, sel Selection) *simcube.Mapping {
	out := simcube.NewMapping("", "")
	sims := make([]float64, m.Rows())
	for j, ck := range m.ColKeys() {
		for i := range sims {
			sims[i] = m.Get(i, j)
		}
		for _, i := range sel.pick(sims) {
			out.Add(m.RowKeys()[i], ck, m.Get(i, j))
		}
	}
	return out
}

// Select applies direction and selection to a similarity matrix (rows =
// S1 elements, columns = S2 elements) and returns the match result.
func Select(m *simcube.Matrix, dir Direction, sel Selection) *simcube.Mapping {
	s1Larger := m.Rows() >= m.Cols()
	switch dir {
	case LargeSmall:
		// Candidates from the larger schema for each element of the
		// smaller target.
		if s1Larger {
			return SelectColwise(m, sel)
		}
		return SelectRowwise(m, sel)
	case SmallLarge:
		if s1Larger {
			return SelectRowwise(m, sel)
		}
		return SelectColwise(m, sel)
	case Both:
		return SelectRowwise(m, sel).Intersect(SelectColwise(m, sel))
	default:
		return simcube.NewMapping("", "")
	}
}

// CombSim identifies a strategy for computing a single combined
// similarity from the match result over two element sets (step 3).
type CombSim int

const (
	// CombAverage divides the summed similarity of all match candidates
	// of both sets by the total number of set elements |S1|+|S2|.
	CombAverage CombSim = iota
	// CombDice returns the ratio of matched elements over the total
	// number of set elements (Dice coefficient): more optimistic, the
	// individual similarity values do not influence the result.
	CombDice
)

// String returns the strategy name.
func (c CombSim) String() string {
	switch c {
	case CombAverage:
		return "Average"
	case CombDice:
		return "Dice"
	default:
		return fmt.Sprintf("CombSim(%d)", int(c))
	}
}

// CombinedSimilarity folds a match result (selected with direction
// Both) over sets of n1 S1 elements and n2 S2 elements into one
// similarity value (paper Section 6.3, Figure 7). Each correspondence
// contributes as a candidate of both sets.
func CombinedSimilarity(c CombSim, n1, n2 int, result *simcube.Mapping) float64 {
	if n1+n2 == 0 {
		return 0
	}
	switch c {
	case CombAverage:
		sum := 0.0
		for _, corr := range result.Correspondences() {
			sum += 2 * corr.Sim
		}
		return clamp01(sum / float64(n1+n2))
	case CombDice:
		matched := len(result.FromElements()) + len(result.ToElements())
		return clamp01(float64(matched) / float64(n1+n2))
	default:
		return 0
	}
}

// MutualBestSimilarity computes the combined similarity of two element
// sets under the (Both, MaxN(1), comb) sub-strategy without
// materializing a matrix or mapping: it evaluates sim exactly once per
// pair (values normalized like Matrix.Set), selects the mutual best
// candidates, and folds them with CombinedSimilarity's arithmetic. It
// is the allocation-free fast path of the hybrid matchers' inner
// combination step and produces bit-identical results to
//
//	Select(matrix, Both, Selection{MaxN: 1})
//
// followed by CombinedSimilarity(comb, rows, cols, mapping).
func MutualBestSimilarity(comb CombSim, rows, cols int, sim func(i, j int) float64) float64 {
	if rows == 0 || cols == 0 {
		return 0
	}
	// Only the per-row and per-column best candidates matter, so the
	// working set is O(rows+cols), not the full grid (two allocations:
	// the row and column halves share one index and one value slice).
	best := make([]int, rows+cols)
	bestVal := make([]float64, rows+cols)
	rowBest, colBest := best[:rows], best[rows:]
	rowBestVal, colBestVal := bestVal[:rows], bestVal[rows:]
	for j := range colBest {
		colBest[j] = -1
	}
	for i := 0; i < rows; i++ {
		rowBest[i] = -1
		for j := 0; j < cols; j++ {
			v := simcube.Clamp(sim(i, j))
			// Strictly-greater comparisons keep the lowest index among
			// ties, matching the stable descending sort of Selection.
			if v > 0 {
				if rowBest[i] < 0 || v > rowBestVal[i] {
					rowBest[i], rowBestVal[i] = j, v
				}
				if colBest[j] < 0 || v > colBestVal[j] {
					colBest[j], colBestVal[j] = i, v
				}
			}
		}
	}
	// Mutual best pairs in row order — the iteration order of
	// Intersect over the rowwise selection.
	switch comb {
	case CombAverage:
		sum := 0.0
		for i, j := range rowBest {
			if j >= 0 && colBest[j] == i {
				sum += 2 * rowBestVal[i]
			}
		}
		return clamp01(sum / float64(rows+cols))
	case CombDice:
		pairs := 0
		for i, j := range rowBest {
			if j >= 0 && colBest[j] == i {
				pairs++
			}
		}
		return clamp01(float64(2*pairs) / float64(rows+cols))
	default:
		return 0
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Strategy is the full combination strategy tuple (paper Section 6.4):
// one sub-strategy per combination step. Comb is only consulted where a
// combined similarity is required (hybrid matchers, schema similarity).
type Strategy struct {
	Agg  AggSpec
	Dir  Direction
	Sel  Selection
	Comb CombSim
}

// String renders the tuple like "(Average, Both, Thr(0.5)+Delta(0.02), Average)".
func (s Strategy) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s)", s.Agg, s.Dir, s.Sel, s.Comb)
}

// Default returns the default combination strategy determined by the
// paper's evaluation: (Average, Both, Threshold(0.5)+Delta(0.02)) with
// Average for combined similarity.
func Default() Strategy {
	return Strategy{
		Agg:  AggSpec{Kind: Average},
		Dir:  Both,
		Sel:  Selection{Threshold: 0.5, Delta: 0.02},
		Comb: CombAverage,
	}
}

// Combine aggregates a similarity cube and selects match candidates in
// one call, returning the aggregated matrix and the match result.
func Combine(cube *simcube.Cube, s Strategy) (*simcube.Matrix, *simcube.Mapping, error) {
	m, err := s.Agg.Apply(cube)
	if err != nil {
		return nil, nil, err
	}
	return m, Select(m, s.Dir, s.Sel), nil
}
