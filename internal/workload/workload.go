// Package workload provides the evaluation workload of the paper
// (Do & Rahm, VLDB 2002, Section 7.1): five purchase-order XML schemas
// and the manually determined real matches for the ten pairwise match
// tasks.
//
// The original schemas (CIDX, Excel, Noris, Paragon, Apertum from
// www.biztalk.org) are no longer available; the schemas here are
// synthetic stand-ins generated from a shared purchase-order concept
// ontology. Every element carries a concept annotation; the gold
// standard for a task is derived from the ontology: two paths really
// match iff their concept keys agree. Each schema draws its own concept
// subset, naming convention (abbreviations, camelCase, the ship/deliver
// and bill/invoice synonym families) and structure (flat vs nested,
// shared Address/Contact fragments), preserving the heterogeneity
// properties the paper's evaluation exercises.
package workload

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// Annotation keys for concept bookkeeping.
const (
	// annoConcept is the element's relative concept ("city", "party");
	// empty for purely structural filler.
	annoConcept = "c"
	// annoContext sets ("shipto") or appends ("+contact") the concept
	// context along a path.
	annoContext = "ctx"
)

// E is a declarative element spec used to build the workload schemas.
type E struct {
	N     string // element name in this schema's convention
	T     string // declared simple type; "" for inner elements
	C     string // relative concept; "" = no gold participation
	X     string // context: "name" sets, "+name" appends
	Share string // shared-fragment key: same key = same node
	Kids  []E
}

// builder constructs a schema from element specs, honouring shared
// fragments.
type builder struct {
	shared map[string]*schema.Node
}

func (b *builder) node(e E) *schema.Node {
	if e.Share != "" {
		if n, ok := b.shared[e.Share]; ok {
			return n
		}
	}
	n := schema.NewNode(e.N)
	n.TypeName = e.T
	if e.T == "" {
		n.Kind = schema.ElemComplex
	} else {
		n.Kind = schema.ElemSimple
	}
	if e.C != "" {
		n.SetAnnotation(annoConcept, e.C)
	}
	if e.X != "" {
		n.SetAnnotation(annoContext, e.X)
	}
	for _, k := range e.Kids {
		n.AddChild(b.node(k))
	}
	if e.Share != "" {
		b.shared[e.Share] = n
	}
	return n
}

// Build constructs a schema from specs. It panics on an invalid graph;
// the workload definitions are static and covered by tests.
func Build(name string, elems []E) *schema.Schema {
	s := schema.New(name)
	b := &builder{shared: make(map[string]*schema.Node)}
	for _, e := range elems {
		s.Root.AddChild(b.node(e))
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("workload: schema %s: %v", name, err))
	}
	return s
}

// ConceptKeys derives the canonical concepts of a path: the innermost
// context along the path joined with each of the terminal element's
// relative concepts. Elements with a single concept yield one key;
// elements covering several concepts (a combined street line, a name
// split into first/last) list them comma-separated and yield one key
// per concept — the source of the workload's genuine m:n gold matches.
// Paths whose terminal element carries no concept return nil.
func ConceptKeys(p schema.Path) []string {
	ctx := ""
	var leafC string
	for _, n := range p.Nodes() {
		if x := n.Annotation(annoContext); x != "" {
			if strings.HasPrefix(x, "+") {
				if ctx != "" {
					ctx = ctx + "." + x[1:]
				} else {
					ctx = x[1:]
				}
			} else {
				ctx = x
			}
		}
		leafC = n.Annotation(annoConcept)
	}
	if leafC == "" {
		return nil
	}
	parts := strings.Split(leafC, ",")
	out := make([]string, len(parts))
	for i, c := range parts {
		out[i] = ctx + ":" + c
	}
	return out
}

// ConceptKey returns the first concept key of a path, or "".
func ConceptKey(p schema.Path) string {
	if ks := ConceptKeys(p); len(ks) > 0 {
		return ks[0]
	}
	return ""
}

// GoldMapping derives the real matches R for a task: all path pairs
// with intersecting, non-empty concept key sets, at similarity 1.0
// (the paper sets all element similarities of manually derived results
// to 1.0).
func GoldMapping(s1, s2 *schema.Schema) *simcube.Mapping {
	m := simcube.NewMapping(s1.Name, s2.Name)
	byKey := make(map[string][]string)
	for _, p := range s2.Paths() {
		for _, k := range ConceptKeys(p) {
			byKey[k] = append(byKey[k], p.String())
		}
	}
	for _, p := range s1.Paths() {
		for _, k := range ConceptKeys(p) {
			for _, to := range byKey[k] {
				m.Add(p.String(), to, 1.0)
			}
		}
	}
	return m
}

// Task is one match task of the evaluation: a schema pair with its
// gold standard.
type Task struct {
	// Name is the paper's task label, e.g. "1<->3".
	Name   string
	I, J   int // 1-based schema indices
	S1, S2 *schema.Schema
	Gold   *simcube.Mapping
}

var (
	once    sync.Once
	schemas []*schema.Schema
	tasks   []Task
)

// Schemas returns the five test schemas, index 0..4 corresponding to
// the paper's schemas 1..5.
func Schemas() []*schema.Schema {
	once.Do(initWorkload)
	return schemas
}

// Tasks returns the ten pairwise match tasks with gold standards, in
// the paper's order 1<->2, 1<->3, ..., 4<->5.
func Tasks() []Task {
	once.Do(initWorkload)
	return tasks
}

// TaskByName returns the task with the given label ("2<->4").
func TaskByName(name string) (Task, bool) {
	for _, t := range Tasks() {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

func initWorkload() {
	schemas = []*schema.Schema{
		buildCIDX(),    // 1
		buildExcel(),   // 2
		buildNoris(),   // 3
		buildParagon(), // 4
		buildApertum(), // 5
	}
	for i := 0; i < len(schemas); i++ {
		for j := i + 1; j < len(schemas); j++ {
			tasks = append(tasks, Task{
				Name: fmt.Sprintf("%d<->%d", i+1, j+1),
				I:    i + 1,
				J:    j + 1,
				S1:   schemas[i],
				S2:   schemas[j],
				Gold: GoldMapping(schemas[i], schemas[j]),
			})
		}
	}
}

// Candidates returns n freshly built schemas for repository-scale
// workloads (batch matching, throughput benchmarks): the five base
// schemas cycled with distinct names ("CIDX", ..., "CIDX#2", ...).
// Every schema is a new instance — none is shared with Schemas() or
// with a previous Candidates call — so analyzer caches and matrix
// arenas see n independent schemas, exactly like a repository holding
// n stored schemas from the same domain.
func Candidates(n int) []*schema.Schema {
	builders := []func() *schema.Schema{
		buildCIDX, buildExcel, buildNoris, buildParagon, buildApertum,
	}
	out := make([]*schema.Schema, n)
	for i := range out {
		s := builders[i%len(builders)]()
		if round := i / len(builders); round > 0 {
			s.Name = fmt.Sprintf("%s#%d", s.Name, round+1)
		}
		out[i] = s
	}
	return out
}

// SchemaSimilarity computes the Dice schema similarity the paper
// reports in Figure 8: the ratio between matched paths and all paths of
// a task.
func SchemaSimilarity(t Task) float64 {
	matched := len(t.Gold.FromElements()) + len(t.Gold.ToElements())
	total := len(t.S1.Paths()) + len(t.S2.Paths())
	if total == 0 {
		return 0
	}
	return float64(matched) / float64(total)
}
