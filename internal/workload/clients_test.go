package workload

import (
	"strings"
	"testing"
)

// TestClientsStreams pins the request generator's contract: n streams,
// one base-schema cycle each, phase-shifted starts, client-tagged
// names disjoint from Candidates' names, fresh instances throughout.
func TestClientsStreams(t *testing.T) {
	clients := Clients(4)
	if len(clients) != 4 {
		t.Fatalf("%d streams, want 4", len(clients))
	}
	stored := make(map[string]bool)
	for _, c := range Candidates(16) {
		stored[c.Name] = true
	}
	seen := make(map[string]bool)
	for i, stream := range clients {
		if len(stream) != 5 {
			t.Fatalf("client %d: %d schemas, want 5", i, len(stream))
		}
		for j, s := range stream {
			if !strings.HasSuffix(s.Name, "@c0") && i == 0 {
				t.Errorf("client 0 schema %q not tagged @c0", s.Name)
			}
			if stored[s.Name] {
				t.Errorf("client schema %q collides with a stored candidate", s.Name)
			}
			if seen[s.Name] {
				t.Errorf("duplicate client schema name %q", s.Name)
			}
			seen[s.Name] = true
			if len(s.Paths()) == 0 {
				t.Errorf("client %d schema %d is empty", i, j)
			}
		}
	}
	// Phase shift: concurrent clients start on different base schemas.
	base := func(name string) string { return name[:strings.IndexByte(name, '@')] }
	if base(clients[0][0].Name) == base(clients[1][0].Name) {
		t.Errorf("clients 0 and 1 start on the same schema %q", clients[0][0].Name)
	}
	// Determinism: a second call produces the same names in the same
	// order (fresh instances, identical streams).
	again := Clients(4)
	for i := range clients {
		for j := range clients[i] {
			if clients[i][j].Name != again[i][j].Name {
				t.Fatalf("stream %d/%d differs across calls: %q vs %q",
					i, j, clients[i][j].Name, again[i][j].Name)
			}
			if clients[i][j] == again[i][j] {
				t.Fatalf("stream %d/%d shares an instance across calls", i, j)
			}
		}
	}
}
