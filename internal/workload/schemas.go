package workload

import "repro/internal/schema"

// The five purchase-order schemas. Concept contexts: order, shipto,
// billto, supplier, customer, item, total, pay, transport; the contact
// sub-context appends ("+contact"). Relative concepts include: no,
// date, status, currency, remark, reference, type (order); party, name,
// id, street, street2, city, zip, country, region, addr (parties);
// contact, name, phone, fax, email (contacts); items, line, no,
// product, desc, qty, uom, price, total, tax (items); totals, sub, tax,
// shipping, grand (totals); payment, terms, method, duedate (payment).

// str/dec/intg/date abbreviate the XSD simple types used below.
const (
	str  = "xsd:string"
	dec  = "xsd:decimal"
	intg = "xsd:integer"
	date = "xsd:date"
)

// buildCIDX is schema 1: flat camelCase names with po/shipTo/billTo
// prefixes, no shared fragments, contacts flattened into the party
// blocks (the "ship" and "bill" sides of the synonym families).
func buildCIDX() *schema.Schema {
	return Build("CIDX", []E{
		{N: "PO", Kids: []E{
			{N: "POHeader", X: "order", C: "order", Kids: []E{
				{N: "poNumber", T: str, C: "no"},
				{N: "poDate", T: date, C: "date"},
				{N: "poStatus", T: str, C: "status"},
				{N: "currency", T: str, C: "currency"},
				{N: "contractRef", T: str, C: "reference"},
				// Pair-exclusive concepts (shared with exactly one
				// other schema): reuse cannot find them through an
				// intermediate, only direct matchers can.
				{N: "deptCode", T: str, C: "dept"},
				{N: "salesRep", T: str, C: "salesrep"},
				{N: "confirmDate", T: date, C: "confirm"},
				{N: "priorityCode", T: str, C: "priority"},
			}},
			{N: "ShipTo", X: "shipto", C: "party", Kids: []E{
				{N: "shipToName", T: str, C: "name"},
				{N: "shipToStreet", T: str, C: "street"},
				{N: "shipToCity", T: str, C: "city"},
				{N: "shipToZip", T: str, C: "zip"},
				{N: "shipToCountry", T: str, C: "country"},
				{N: "shipToContactName", T: str, C: "name", X: "+contact"},
				{N: "shipToContactPhone", T: str, C: "phone", X: "+contact"},
				{N: "shipToContactEmail", T: str, C: "email", X: "+contact"},
			}},
			{N: "BillTo", X: "billto", C: "party", Kids: []E{
				{N: "billToName", T: str, C: "name"},
				{N: "billToStreet", T: str, C: "street"},
				{N: "billToCity", T: str, C: "city"},
				{N: "billToZip", T: str, C: "zip"},
				{N: "billToCountry", T: str, C: "country"},
				{N: "billToContactName", T: str, C: "name", X: "+contact"},
				{N: "billToContactPhone", T: str, C: "phone", X: "+contact"},
			}},
			{N: "Supplier", X: "supplier", C: "party", Kids: []E{
				{N: "supplierName", T: str, C: "name"},
				{N: "supplierID", T: str, C: "id"},
				{N: "supplierStreet", T: str, C: "street"},
				{N: "supplierCity", T: str, C: "city"},
				{N: "supplierZip", T: str, C: "zip"},
			}},
			{N: "Items", X: "item", C: "items", Kids: []E{
				{N: "Item", C: "line", Kids: []E{
					{N: "itemNo", T: intg, C: "no"},
					{N: "partNumber", T: str, C: "product"},
					{N: "itemDesc", T: str, C: "desc"},
					{N: "qty", T: dec, C: "qty"},
					{N: "unitOfMeasure", T: str, C: "uom"},
					{N: "unitPrice", T: dec, C: "price"},
					{N: "lineTotal", T: dec, C: "total"},
				}},
			}},
			{N: "OrderTotal", X: "total", C: "totals", Kids: []E{
				{N: "subTotal", T: dec, C: "sub"},
				{N: "taxAmount", T: dec, C: "tax"},
				{N: "freightAmount", T: dec, C: "shipping"},
				{N: "totalAmount", T: dec, C: "grand"},
			}},
			// CIDX-specific EDI acknowledgement and routing blocks: no
			// counterparts in the other schemas.
			{N: "Acknowledgement", X: "ack", C: "ackblock", Kids: []E{
				{N: "ackDate", T: date, C: "ackdate"},
				{N: "ackStatus", T: str, C: "ackstatus"},
				{N: "ackBy", T: str, C: "ackby"},
				{N: "ackComment", T: str, C: "ackcomment"},
			}},
			{N: "Routing", X: "routing", C: "routeblock", Kids: []E{
				{N: "routeCode", T: str, C: "routecode"},
				{N: "carrierService", T: str, C: "service"},
				{N: "fobPoint", T: str, C: "fob"},
			}},
		}},
	})
}

// buildExcel is schema 2: abbreviated names (poNum, curr, amt, frt),
// the deliver/invoice synonym family, and Addr/Contact fragments shared
// across the parties (source of its path/node discrepancy).
func buildExcel() *schema.Schema {
	// Excel folds both street lines into one element, a genuine 1:n
	// correspondence against schemas with separate street/street2.
	addr := E{N: "Addr", C: "addr", Share: "addr", Kids: []E{
		{N: "street", T: str, C: "street,street2"},
		{N: "city", T: str, C: "city"},
		{N: "zip", T: str, C: "zip"},
		{N: "country", T: str, C: "country"},
	}}
	contact := E{N: "Contact", C: "contact", X: "+contact", Share: "contact", Kids: []E{
		{N: "name", T: str, C: "name"},
		{N: "phone", T: str, C: "phone"},
		{N: "email", T: str, C: "email"},
	}}
	return Build("Excel", []E{
		{N: "Header", X: "order", C: "order", Kids: []E{
			{N: "poNum", T: str, C: "no"},
			{N: "poDate", T: date, C: "date"},
			{N: "curr", T: str, C: "currency"},
			{N: "note", T: str, C: "remark"},
			{N: "deptNum", T: str, C: "dept"},
			{N: "expiryDate", T: date, C: "expiry"},
			{N: "channelCode", T: str, C: "channel"},
		}},
		{N: "DeliverTo", X: "shipto", C: "party", Kids: []E{addr, contact}},
		{N: "InvoiceTo", X: "billto", C: "party", Kids: []E{addr, contact}},
		{N: "Vendor", X: "supplier", C: "party", Kids: []E{
			{N: "vendorNo", T: str, C: "id"},
			{N: "vendorName", T: str, C: "name"},
			contact,
		}},
		{N: "LineItems", X: "item", C: "items", Kids: []E{
			{N: "Line", C: "line", Kids: []E{
				{N: "lineNo", T: intg, C: "no"},
				{N: "prodCode", T: str, C: "product"},
				{N: "prodDesc", T: str, C: "desc"},
				{N: "qty", T: dec, C: "qty"},
				{N: "uom", T: str, C: "uom"},
				{N: "unitCost", T: dec, C: "price"},
				{N: "amt", T: dec, C: "total"},
			}},
		}},
		{N: "Summary", X: "total", C: "totals", Kids: []E{
			{N: "subTot", T: dec, C: "sub"},
			{N: "taxAmt", T: dec, C: "tax"},
			{N: "frtAmt", T: dec, C: "shipping"},
			{N: "totAmt", T: dec, C: "grand"},
			{N: "depositAmt", T: dec, C: "deposit"},
		}},
		// Excel-specific warehouse fulfilment and discount blocks.
		{N: "Warehouse", X: "warehouse", C: "whblock", Kids: []E{
			{N: "whCode", T: str, C: "whcode"},
			{N: "whName", T: str, C: "whname"},
			{N: "binLocation", T: str, C: "bin"},
			{N: "pickDate", T: date, C: "pickdate"},
		}},
		{N: "Discounts", X: "discount", C: "discblock", Kids: []E{
			{N: "discCode", T: str, C: "disccode"},
			{N: "discPct", T: dec, C: "discpct"},
			{N: "discAmt", T: dec, C: "discamt"},
		}},
	})
}

// buildNoris is schema 3: the delivery/invoice synonym family with
// town/postcode vocabulary, a seller party, and shared address/contact
// fragments across three parties.
func buildNoris() *schema.Schema {
	addr := E{N: "DeliveryAddress", C: "addr", Share: "naddr", Kids: []E{
		{N: "road", T: str, C: "street"},
		{N: "roadExtra", T: str, C: "street2"},
		{N: "town", T: str, C: "city"},
		{N: "postcode", T: str, C: "zip"},
		{N: "country", T: str, C: "country"},
		{N: "region", T: str, C: "region"},
	}}
	// Noris splits the contact name into first/last: each half really
	// matches the other schemas' single name element (paper Figure 3).
	contact := E{N: "ContactPerson", C: "contact", X: "+contact", Share: "ncontact", Kids: []E{
		{N: "firstName", T: str, C: "name"},
		{N: "lastName", T: str, C: "name"},
		{N: "telephone", T: str, C: "phone"},
		{N: "fax", T: str, C: "fax"},
		{N: "email", T: str, C: "email"},
	}}
	return Build("Noris", []E{
		{N: "OrderInfo", X: "order", C: "order", Kids: []E{
			{N: "orderNumber", T: str, C: "no"},
			{N: "orderDate", T: date, C: "date"},
			{N: "orderStatus", T: str, C: "status"},
			{N: "currencyCode", T: str, C: "currency"},
			{N: "orderType", T: str, C: "type"},
			{N: "orderRemark", T: str, C: "remark"},
			{N: "salesRepresentative", T: str, C: "salesrep"},
			{N: "expiry", T: date, C: "expiry"},
			{N: "projectCode", T: str, C: "project"},
		}},
		{N: "Delivery", X: "shipto", C: "party", Kids: []E{addr, contact}},
		{N: "Invoice", X: "billto", C: "party", Kids: []E{addr, contact}},
		{N: "Seller", X: "supplier", C: "party", Kids: []E{
			{N: "sellerNumber", T: str, C: "id"},
			{N: "sellerName", T: str, C: "name"},
			addr,
		}},
		{N: "Articles", X: "item", C: "items", Kids: []E{
			{N: "Article", C: "line", Kids: []E{
				{N: "articleNumber", T: intg, C: "no"},
				{N: "articleCode", T: str, C: "product"},
				{N: "articleDescription", T: str, C: "desc"},
				{N: "quantity", T: dec, C: "qty"},
				{N: "unit", T: str, C: "uom"},
				{N: "cost", T: dec, C: "price"},
				{N: "articleTotal", T: dec, C: "total"},
				{N: "taxRate", T: dec, C: "tax"},
			}},
		}},
		{N: "Totals", X: "total", C: "totals", Kids: []E{
			{N: "netAmount", T: dec, C: "sub"},
			{N: "taxAmount", T: dec, C: "tax"},
			{N: "deliveryCharge", T: dec, C: "shipping"},
			{N: "grossAmount", T: dec, C: "grand"},
		}},
		{N: "Payment", X: "pay", C: "payment", Kids: []E{
			{N: "paymentTerms", T: str, C: "terms"},
			{N: "paymentMethod", T: str, C: "method"},
			{N: "dueDate", T: date, C: "duedate"},
		}},
		// Noris-specific banking and legal blocks.
		{N: "BankDetails", X: "bank", C: "bankblock", Kids: []E{
			{N: "bankName", T: str, C: "bankname"},
			{N: "accountNumber", T: str, C: "account"},
			{N: "sortCode", T: str, C: "sortcode"},
			{N: "iban", T: str, C: "iban"},
		}},
		{N: "LegalTerms", X: "legal", C: "legalblock", Kids: []E{
			{N: "jurisdiction", T: str, C: "jurisdiction"},
			{N: "retentionClause", T: str, C: "retention"},
			{N: "penaltyRate", T: dec, C: "penalty"},
		}},
	})
}

// buildParagon is schema 4: the deepest schema (six levels), verbose
// full-word names, party/detail wrapper levels, and no shared
// fragments — every party spells out its own address and contact.
func buildParagon() *schema.Schema {
	postal := func() E {
		return E{N: "PostalAddress", C: "addr", Kids: []E{
			{N: "StreetName", T: str, C: "street"},
			{N: "CityName", T: str, C: "city"},
			{N: "PostalCode", T: str, C: "zip"},
			{N: "CountryCode", T: str, C: "country"},
		}}
	}
	person := func() E {
		return E{N: "ContactPerson", C: "contact", X: "+contact", Kids: []E{
			{N: "PersonName", T: str, C: "name"},
			{N: "TelephoneNumber", T: str, C: "phone"},
			{N: "ElectronicMail", T: str, C: "email"},
		}}
	}
	return Build("Paragon", []E{
		{N: "PurchaseOrder", Kids: []E{
			{N: "OrderHeader", X: "order", C: "order", Kids: []E{
				{N: "OrderNumber", T: str, C: "no"},
				{N: "OrderIssueDate", T: date, C: "date"},
				{N: "OrderStatus", T: str, C: "status"},
				{N: "CurrencyCode", T: str, C: "currency"},
				{N: "ContractReference", T: str, C: "reference"},
				{N: "RevisionNumber", T: str, C: "revision"},
				{N: "ConfirmationDate", T: date, C: "confirm"},
				{N: "ProjectCode", T: str, C: "project"},
			}},
			{N: "Parties", Kids: []E{
				{N: "ShippingParty", X: "shipto", C: "party", Kids: []E{
					{N: "PartyName", T: str, C: "name"},
					postal(),
					person(),
				}},
				{N: "InvoicingParty", X: "billto", C: "party", Kids: []E{
					{N: "PartyName", T: str, C: "name"},
					postal(),
					person(),
				}},
				{N: "SupplierParty", X: "supplier", C: "party", Kids: []E{
					{N: "PartyName", T: str, C: "name"},
					{N: "PartyIdentifier", T: str, C: "id"},
					postal(),
				}},
				// Paragon-specific freight forwarder: a unique party
				// context the other schemas lack.
				{N: "FreightForwarderParty", X: "forwarder", C: "party", Kids: []E{
					{N: "PartyName", T: str, C: "name"},
					postal(),
				}},
			}},
			{N: "OrderDetail", Kids: []E{
				{N: "ItemList", X: "item", C: "items", Kids: []E{
					{N: "ItemDetail", C: "line", Kids: []E{
						{N: "LineNumber", T: intg, C: "no"},
						{N: "ProductIdentifier", T: str, C: "product"},
						{N: "ProductDescription", T: str, C: "desc"},
						{N: "OrderedQuantity", T: dec, C: "qty"},
						{N: "UnitOfMeasure", T: str, C: "uom"},
						{N: "RequestedDate", T: date, C: "reqdate"},
						{N: "Pricing", Kids: []E{
							{N: "UnitPrice", T: dec, C: "price"},
							{N: "LineItemTotal", T: dec, C: "total"},
							{N: "TaxRate", T: dec, C: "tax"},
						}},
					}},
				}},
			}},
			{N: "OrderSummary", X: "total", C: "totals", Kids: []E{
				{N: "SubtotalAmount", T: dec, C: "sub"},
				{N: "TaxTotalAmount", T: dec, C: "tax"},
				{N: "ShippingCharge", T: dec, C: "shipping"},
				{N: "GrandTotalAmount", T: dec, C: "grand"},
				{N: "DepositAmount", T: dec, C: "deposit"},
			}},
			// Paragon-specific delivery scheduling and quality blocks
			// in place of a payment section.
			{N: "DeliverySchedule", X: "sched", C: "schedblock", Kids: []E{
				{N: "ScheduledDate", T: date, C: "scheddate"},
				{N: "ScheduledQuantity", T: dec, C: "schedqty"},
				{N: "ShipmentWindow", T: str, C: "window"},
			}},
			{N: "QualityRequirements", X: "quality", C: "qualblock", Kids: []E{
				{N: "InspectionLevel", T: str, C: "inspection"},
				{N: "CertificateRequired", T: str, C: "certificate"},
				{N: "ToleranceRate", T: dec, C: "tolerance"},
			}},
		}},
	})
}

// buildApertum is schema 5: the largest schema with the heaviest
// fragment sharing — Address and Contact are used by four partners, the
// transport block, and the per-item delivery address, producing far
// more paths than nodes.
func buildApertum() *schema.Schema {
	addr := E{N: "Address", C: "addr", Share: "aaddr", Kids: []E{
		{N: "street", T: str, C: "street"},
		{N: "additionalStreet", T: str, C: "street2"},
		{N: "city", T: str, C: "city"},
		{N: "zipCode", T: str, C: "zip"},
		{N: "countryCode", T: str, C: "country"},
		{N: "region", T: str, C: "region"},
		{N: "locality", T: str},
	}}
	contact := E{N: "Contact", C: "contact", X: "+contact", Share: "acontact", Kids: []E{
		{N: "contactName", T: str, C: "name"},
		{N: "phoneNumber", T: str, C: "phone"},
		{N: "faxNumber", T: str, C: "fax"},
		{N: "emailAddress", T: str, C: "email"},
		{N: "jobTitle", T: str},
	}}
	partner := func(name, ctx string, extra ...E) E {
		kids := []E{
			{N: "partnerName", T: str, C: "name"},
			{N: "partnerID", T: str, C: "id"},
			addr,
			contact,
		}
		kids = append(kids, extra...)
		return E{N: name, X: ctx, C: "party", Kids: kids}
	}
	return Build("Apertum", []E{
		{N: "Document", X: "order", C: "order", Kids: []E{
			{N: "docNumber", T: str, C: "no"},
			{N: "docDate", T: date, C: "date"},
			{N: "docStatus", T: str, C: "status"},
			{N: "docType", T: str, C: "type"},
			{N: "currency", T: str, C: "currency"},
			{N: "remark", T: str, C: "remark"},
			{N: "priority", T: str, C: "priority"},
			{N: "salesChannel", T: str, C: "channel"},
			{N: "revisionNumber", T: str, C: "revision"},
		}},
		{N: "Partners", Kids: []E{
			partner("ShipToPartner", "shipto"),
			partner("BillToPartner", "billto"),
			partner("VendorPartner", "supplier"),
			partner("CustomerPartner", "customer"),
		}},
		{N: "ItemList", X: "item", C: "items", Kids: []E{
			{N: "Item", C: "line", Kids: []E{
				{N: "itemNumber", T: intg, C: "no"},
				{N: "productCode", T: str, C: "product"},
				{N: "productName", T: str, C: "desc"},
				{N: "quantity", T: dec, C: "qty"},
				{N: "unit", T: str, C: "uom"},
				{N: "price", T: dec, C: "price"},
				{N: "itemTotal", T: dec, C: "total"},
				{N: "taxRate", T: dec, C: "tax"},
				{N: "requestedDate", T: date, C: "reqdate"},
				{N: "shippingMark", T: str, C: "shipmark"},
			}},
		}},
		{N: "Totals", X: "total", C: "totals", Kids: []E{
			{N: "netTotal", T: dec, C: "sub"},
			{N: "taxTotal", T: dec, C: "tax"},
			{N: "shippingCost", T: dec, C: "shipping"},
			{N: "grandTotal", T: dec, C: "grand"},
		}},
		{N: "Payment", X: "pay", C: "payment", Kids: []E{
			{N: "terms", T: str, C: "terms"},
			{N: "method", T: str, C: "method"},
			{N: "dueDate", T: date, C: "duedate"},
		}},
		{N: "Transport", X: "transport", C: "transport", Kids: []E{
			{N: "carrier", T: str, C: "carrier"},
			{N: "transportMode", T: str, C: "mode"},
			{N: "trackingId", T: str, C: "tracking"},
			{N: "incoterm", T: str, C: "incoterm"},
			{N: "portOfLoading", T: str, C: "port"},
		}},
		{N: "Customs", X: "customs", C: "customsblock", Kids: []E{
			{N: "hsCode", T: str, C: "hscode"},
			{N: "originCountry", T: str, C: "origin"},
			{N: "dutyRate", T: dec, C: "duty"},
		}},
	})
}
