package workload

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

func TestSchemasValid(t *testing.T) {
	ss := Schemas()
	if len(ss) != 5 {
		t.Fatalf("schemas = %d", len(ss))
	}
	names := []string{"CIDX", "Excel", "Noris", "Paragon", "Apertum"}
	for i, s := range ss {
		if s.Name != names[i] {
			t.Errorf("schema %d = %s, want %s", i, s.Name, names[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("schema %s invalid: %v", s.Name, err)
		}
	}
}

// TestSchemaSizes checks the Table 5 shape: sizes in the paper's
// ballpark, increasing path counts from schema 1 to 5, shared fragments
// making #paths > #nodes where intended, and the depth spread.
func TestSchemaSizes(t *testing.T) {
	ss := Schemas()
	var stats []schema.Stats
	for _, s := range ss {
		st := schema.ComputeStats(s)
		stats = append(stats, st)
		t.Logf("%-8s depth=%d nodes=%d paths=%d inner=%d/%d leaf=%d/%d",
			st.Name, st.MaxDepth, st.Nodes, st.Paths,
			st.InnerNodes, st.InnerPaths, st.LeafNodes, st.LeafPaths)
	}
	// Schema 1: no sharing → paths == nodes.
	if stats[0].Paths != stats[0].Nodes {
		t.Errorf("CIDX should have no shared fragments: %d paths vs %d nodes", stats[0].Paths, stats[0].Nodes)
	}
	// Schemas 2, 3, 5 use shared fragments → more paths than nodes.
	for _, i := range []int{1, 2, 4} {
		if stats[i].Paths <= stats[i].Nodes {
			t.Errorf("%s should have shared fragments: %d paths vs %d nodes", stats[i].Name, stats[i].Paths, stats[i].Nodes)
		}
	}
	// Apertum is the largest task by far (paper: 145 paths).
	if stats[4].Paths < 100 {
		t.Errorf("Apertum paths = %d, want >= 100", stats[4].Paths)
	}
	// Paragon is the deepest (paper: depth 6).
	if stats[3].MaxDepth < 5 {
		t.Errorf("Paragon depth = %d, want >= 5", stats[3].MaxDepth)
	}
	// Overall size band of Table 5.
	for _, st := range stats {
		if st.Nodes < 30 || st.Nodes > 90 {
			t.Errorf("%s nodes = %d outside Table 5 band [30,90]", st.Name, st.Nodes)
		}
	}
}

func TestConceptKey(t *testing.T) {
	s := Schemas()[0] // CIDX
	cases := []struct{ path, want string }{
		{"PO.ShipTo.shipToCity", "shipto:city"},
		{"PO.ShipTo.shipToContactPhone", "shipto.contact:phone"},
		{"PO.BillTo.billToCity", "billto:city"},
		{"PO.Items.Item.qty", "item:qty"},
		{"PO.ShipTo", "shipto:party"},
		{"PO", ""}, // structural filler
	}
	for _, c := range cases {
		p, ok := s.FindPath(c.path)
		if !ok {
			t.Fatalf("path %s missing", c.path)
		}
		if got := ConceptKey(p); got != c.want {
			t.Errorf("ConceptKey(%s) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestConceptKeySharedFragmentContexts(t *testing.T) {
	s := Schemas()[1] // Excel with shared Addr
	d, ok := s.FindPath("DeliverTo.Addr.city")
	if !ok {
		t.Fatalf("DeliverTo.Addr.city missing:\n%s", s.String())
	}
	i, ok := s.FindPath("InvoiceTo.Addr.city")
	if !ok {
		t.Fatal("InvoiceTo.Addr.city missing")
	}
	if ConceptKey(d) != "shipto:city" || ConceptKey(i) != "billto:city" {
		t.Errorf("shared fragment contexts: %q / %q", ConceptKey(d), ConceptKey(i))
	}
}

func TestGoldMappingBasics(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 10 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	// Task 1<->2: the cross-synonym matches must be present.
	task := tasks[0]
	if task.Name != "1<->2" {
		t.Fatalf("task order wrong: %s", task.Name)
	}
	mustContain := [][2]string{
		{"PO.ShipTo.shipToCity", "DeliverTo.Addr.city"},
		{"PO.BillTo.billToCity", "InvoiceTo.Addr.city"},
		{"PO.ShipTo", "DeliverTo"},
		{"PO.Items.Item.qty", "LineItems.Line.qty"},
		{"PO.OrderTotal.totalAmount", "Summary.totAmt"},
		{"PO.Supplier.supplierID", "Vendor.vendorNo"},
	}
	for _, pair := range mustContain {
		if !task.Gold.Contains(pair[0], pair[1]) {
			t.Errorf("gold 1<->2 missing %s <-> %s", pair[0], pair[1])
		}
	}
	// Cross-context pairs must NOT be gold.
	if task.Gold.Contains("PO.ShipTo.shipToCity", "InvoiceTo.Addr.city") {
		t.Error("gold must distinguish shipto from billto contexts")
	}
	// All gold sims are 1.0 (manual results).
	for _, c := range task.Gold.Correspondences() {
		if c.Sim != 1.0 {
			t.Errorf("gold sim %.2f != 1.0 for %s", c.Sim, c)
		}
	}
}

func TestGoldSymmetry(t *testing.T) {
	// GoldMapping(s2, s1) is the inverse of GoldMapping(s1, s2).
	ss := Schemas()
	fwd := GoldMapping(ss[0], ss[2])
	rev := GoldMapping(ss[2], ss[0])
	if fwd.Len() != rev.Len() {
		t.Fatalf("asymmetric gold: %d vs %d", fwd.Len(), rev.Len())
	}
	for _, c := range fwd.Correspondences() {
		if !rev.Contains(c.To, c.From) {
			t.Errorf("gold not symmetric for %s", c)
		}
	}
}

func TestProblemSizesFigure8(t *testing.T) {
	// Figure 8 shape: schema similarity mostly around 0.5, sinking for
	// the largest tasks; #matches grows with task size.
	for _, task := range Tasks() {
		sim := SchemaSimilarity(task)
		t.Logf("%s: #matches=%d #paths=%d+%d sim=%.2f",
			task.Name, task.Gold.Len(), len(task.S1.Paths()), len(task.S2.Paths()), sim)
		if sim < 0.25 || sim > 0.95 {
			t.Errorf("task %s similarity %.2f outside plausible Figure 8 band", task.Name, sim)
		}
		if task.Gold.Len() < 20 {
			t.Errorf("task %s has only %d gold matches", task.Name, task.Gold.Len())
		}
	}
}

func TestTaskByName(t *testing.T) {
	task, ok := TaskByName("2<->4")
	if !ok || task.I != 2 || task.J != 4 {
		t.Fatalf("TaskByName: %v %v", task, ok)
	}
	if _, ok := TaskByName("9<->9"); ok {
		t.Error("bogus task name should miss")
	}
}

func TestDuplicateConceptKeysOnlyWhereIntended(t *testing.T) {
	// Within one schema, a concept key identifies at most one path —
	// except for the documented m:n families: Noris splits contact
	// names into first/last, so each contact context duplicates its
	// ":name" key.
	for _, s := range Schemas() {
		seen := make(map[string]string)
		for _, p := range s.Paths() {
			for _, k := range ConceptKeys(p) {
				prev, dup := seen[k]
				if !dup {
					seen[k] = p.String()
					continue
				}
				if s.Name == "Noris" && strings.HasSuffix(k, ".contact:name") {
					continue // intended split-name duplication
				}
				t.Errorf("%s: concept %q on both %s and %s", s.Name, k, prev, p)
			}
		}
	}
}

func TestGoldManyToMany(t *testing.T) {
	// Task 2<->3: Excel's combined street line matches both Noris
	// street elements; Noris' split names both match Excel's single
	// contact name.
	task, ok := TaskByName("2<->3")
	if !ok {
		t.Fatal("task missing")
	}
	if !task.Gold.Contains("DeliverTo.Addr.street", "Delivery.DeliveryAddress.road") ||
		!task.Gold.Contains("DeliverTo.Addr.street", "Delivery.DeliveryAddress.roadExtra") {
		t.Error("1:n street-line gold matches missing")
	}
	if !task.Gold.Contains("DeliverTo.Contact.name", "Delivery.ContactPerson.firstName") ||
		!task.Gold.Contains("DeliverTo.Contact.name", "Delivery.ContactPerson.lastName") {
		t.Error("1:n split-name gold matches missing")
	}
}
