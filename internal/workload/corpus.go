package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
)

// This file generates repository-scale corpora for the candidate-
// pruning benchmarks and tests. Candidates() cycles five hand-built
// schemas, which is right for cache benchmarks but wrong for pruning
// ones: with only five distinct shapes, every stored schema is either
// a perfect twin of the probe or unrelated, and a prune ratio measured
// on it says nothing about a real store. Corpus() instead emulates how
// real schema repositories look: a Zipf-distributed shared vocabulary
// (a few head tokens — order, date, amount — appear in a large
// fraction of schemas, a long tail appears in a handful), and
// evolution families — blocks of schemas that are successive revisions
// of one base, sharing most of their element names. The probe's family
// fills the TopK with high scores early; the shared head tokens give
// everything else nonzero-but-small bounds, which is exactly the
// regime safe pruning has to earn its keep in.

const (
	// corpusFamilySize is the number of schemas per evolution family.
	// It deliberately exceeds the TopK the pruning tests and benchmarks
	// use: with fewer same-family candidates than K, the K-th best real
	// score is a junk-level one and NO admissible bound — this index's
	// or any other — could prune against it.
	corpusFamilySize = 16
	// corpusVocabSize is the shared (Zipf-ranked) token vocabulary size.
	corpusVocabSize = 512
)

type corpusLeaf struct {
	name string
	typ  string
}

type corpusSection struct {
	name   string
	leaves []corpusLeaf
}

// corpusSpec is one evolution family's mutable blueprint.
type corpusSpec struct {
	root     string
	sections []corpusSection
}

// corpusGen carries the deterministic generation state: one rand
// stream drives everything, so a (n, seed) pair always yields the
// same corpus.
type corpusGen struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab []string
}

func newCorpusGen(seed int64) *corpusGen {
	g := &corpusGen{rng: rand.New(rand.NewSource(seed))}
	g.vocab = make([]string, 0, corpusVocabSize)
	seen := make(map[string]bool, corpusVocabSize)
	for len(g.vocab) < corpusVocabSize {
		t := g.token()
		if !seen[t] {
			seen[t] = true
			g.vocab = append(g.vocab, t)
		}
	}
	g.zipf = rand.NewZipf(g.rng, 1.2, 2, uint64(corpusVocabSize-1))
	return g
}

// token builds one specific (long-tail) name token: 5-8 random
// lowercase letters. Letter-random tokens keep trigram collisions
// between unrelated tokens rare, the way real-world field
// vocabularies do; tokens concatenated from a small syllable set would
// share trigrams with most of the corpus and drown every
// gram-channel signal in noise.
func (g *corpusGen) token() string {
	b := make([]byte, 5+g.rng.Intn(4))
	for i := range b {
		b[i] = byte('a' + g.rng.Intn(26))
	}
	return string(b)
}

// shared draws one Zipf-ranked token from the shared vocabulary.
func (g *corpusGen) shared() string { return g.vocab[g.zipf.Uint64()] }

// title upper-cases a token's first byte for camelCase concatenation.
func title(t string) string { return string(t[0]-'a'+'A') + t[1:] }

// leafName builds a three-token camelCase leaf name carrying at most
// one shared-vocabulary token — enough head-token overlap for postings
// to hit across unrelated schemas, little enough that the hits stay
// individually weak (mostly-shared names would make every stored
// schema bound-close to every probe and starve the pruner).
func (g *corpusGen) leafName() string {
	if g.rng.Float64() < 0.35 {
		return g.token() + title(g.token()) + title(g.shared())
	}
	return g.token() + title(g.token()) + title(g.token())
}

var corpusTypes = []string{str, str, str, dec, intg, date}

// family generates a fresh evolution family's base blueprint.
func (g *corpusGen) family() *corpusSpec {
	spec := &corpusSpec{root: g.token() + title(g.token())}
	nsec := 3 + g.rng.Intn(3)
	for i := 0; i < nsec; i++ {
		sec := corpusSection{name: g.token() + title(g.shared())}
		nleaf := 4 + g.rng.Intn(5)
		for j := 0; j < nleaf; j++ {
			sec.leaves = append(sec.leaves, corpusLeaf{
				name: g.leafName(),
				typ:  corpusTypes[g.rng.Intn(len(corpusTypes))],
			})
		}
		spec.sections = append(spec.sections, sec)
	}
	return spec
}

// evolve mutates the blueprint in place into its next revision:
// roughly 15% of the leaves are renamed (and may change type), the
// way fields drift between versions of one interface.
func (g *corpusGen) evolve(spec *corpusSpec) {
	for si := range spec.sections {
		for li := range spec.sections[si].leaves {
			if g.rng.Float64() < 0.15 {
				spec.sections[si].leaves[li] = corpusLeaf{
					name: g.leafName(),
					typ:  corpusTypes[g.rng.Intn(len(corpusTypes))],
				}
			}
		}
	}
}

// build materializes the blueprint under the given schema name.
func (spec *corpusSpec) build(name string) *schema.Schema {
	secs := make([]E, len(spec.sections))
	for i, sec := range spec.sections {
		kids := make([]E, len(sec.leaves))
		for j, l := range sec.leaves {
			kids[j] = E{N: l.name, T: l.typ}
		}
		secs[i] = E{N: sec.name, Kids: kids}
	}
	return Build(name, []E{{N: spec.root, Kids: secs}})
}

// Corpus returns n deterministic repository-scale schemas: evolution
// families of corpusFamilySize successive revisions, named
// "corp-<family>-<revision>", over a Zipf-distributed shared token
// vocabulary. Equal (n, seed) pairs yield identical corpora, and a
// shorter corpus is always a prefix of a longer one with the same
// seed.
func Corpus(n int, seed int64) []*schema.Schema {
	stored, _ := CorpusPair(n, seed)
	return stored
}

// CorpusPair returns a deterministic corpus of n stored schemas plus
// one incoming probe: one more revision of the corpus's last evolution
// family, under a name ("corp-<family>-<revision>") no stored schema
// carries. The probe's stored siblings rank high — they are revisions
// of the same base — so a TopK match against the corpus saturates its
// threshold early, the regime the candidate pruner is built for.
func CorpusPair(n int, seed int64) (stored []*schema.Schema, incoming *schema.Schema) {
	g := newCorpusGen(seed)
	stored = make([]*schema.Schema, n)
	var spec *corpusSpec
	fam := -1
	for i := 0; i < n; i++ {
		if i%corpusFamilySize == 0 {
			spec = g.family()
			fam++
		} else {
			g.evolve(spec)
		}
		stored[i] = spec.build(fmt.Sprintf("corp-%d-%d", fam, i%corpusFamilySize))
	}
	if n == 0 {
		spec, fam = g.family(), 0
		incoming = spec.build("corp-0-0")
		return nil, incoming
	}
	g.evolve(spec)
	incoming = spec.build(fmt.Sprintf("corp-%d-%d", fam, corpusFamilySize+(n-1)%corpusFamilySize))
	return stored, incoming
}
