package workload

import (
	"fmt"

	"repro/internal/schema"
)

// Clients returns n deterministic per-client request streams for
// repository-server workloads (the MatchServe benchmarks and load
// tests): client i receives one full cycle through the five base
// schemas, phase-shifted by i so concurrent clients hit the server
// with different incoming schemas at any instant, each renamed
// "<Base>@c<i>" so no incoming schema collides with a stored candidate
// (a name collision would silently drop that candidate from the match)
// or with another client's traffic. Every schema is a fresh instance,
// like Candidates — per-shard analyzer caches see each client's
// incoming schemas as distinct, exactly as a server would.
func Clients(n int) [][]*schema.Schema {
	builders := []func() *schema.Schema{
		buildCIDX, buildExcel, buildNoris, buildParagon, buildApertum,
	}
	out := make([][]*schema.Schema, n)
	for i := range out {
		stream := make([]*schema.Schema, len(builders))
		for j := range stream {
			s := builders[(i+j)%len(builders)]()
			s.Name = fmt.Sprintf("%s@c%d", s.Name, i)
			stream[j] = s
		}
		out[i] = stream
	}
	return out
}
