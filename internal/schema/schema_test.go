package schema

import (
	"strings"
	"testing"
)

// buildPO2 constructs the running example XML schema of Figure 1:
// PO2 with DeliverTo/BillTo sharing an Address fragment.
func buildPO2() *Schema {
	s := New("PO2")
	deliver := NewNode("DeliverTo")
	bill := NewNode("BillTo")
	addr := NewNode("Address")
	street := &Node{Name: "Street", TypeName: "xsd:string"}
	city := &Node{Name: "City", TypeName: "xsd:string"}
	zip := &Node{Name: "Zip", TypeName: "xsd:decimal"}
	addr.AddChild(street)
	addr.AddChild(city)
	addr.AddChild(zip)
	deliver.AddChild(addr)
	bill.AddChild(addr)
	s.Root.AddChild(deliver)
	s.Root.AddChild(bill)
	return s
}

func buildPO1() *Schema {
	s := New("PO1")
	ship := NewNode("ShipTo")
	for _, c := range []struct{ name, typ string }{
		{"poNo", "INT"}, {"custNo", "INT"},
		{"shipToStreet", "VARCHAR(200)"}, {"shipToCity", "VARCHAR(200)"}, {"shipToZip", "VARCHAR(20)"},
	} {
		ship.AddChild(&Node{Name: c.name, TypeName: c.typ, Kind: ElemColumn})
	}
	cust := NewNode("Customer")
	for _, c := range []struct{ name, typ string }{
		{"custNo", "INT"}, {"custName", "VARCHAR(200)"},
		{"custStreet", "VARCHAR(200)"}, {"custCity", "VARCHAR(200)"}, {"custZip", "VARCHAR(20)"},
	} {
		cust.AddChild(&Node{Name: c.name, TypeName: c.typ, Kind: ElemColumn})
	}
	s.Root.AddChild(ship)
	s.Root.AddChild(cust)
	return s
}

func TestPathsSharedFragment(t *testing.T) {
	s := buildPO2()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	paths := s.Paths()
	// 2 top-level + 2 Address occurrences + 2*3 leaves = 10 paths.
	if len(paths) != 10 {
		t.Fatalf("got %d paths, want 10", len(paths))
	}
	// The shared Address node produces City under both contexts.
	want := map[string]bool{
		"DeliverTo.Address.City": false,
		"BillTo.Address.City":    false,
	}
	for _, p := range paths {
		if _, ok := want[p.String()]; ok {
			want[p.String()] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing path %s", k)
		}
	}
	// Distinct nodes: DeliverTo, BillTo, Address, Street, City, Zip = 6.
	if n := len(s.Nodes()); n != 6 {
		t.Errorf("got %d nodes, want 6", n)
	}
}

func TestStats(t *testing.T) {
	s := buildPO2()
	st := ComputeStats(s)
	if st.Nodes != 6 || st.Paths != 10 {
		t.Errorf("nodes/paths = %d/%d, want 6/10", st.Nodes, st.Paths)
	}
	if st.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", st.MaxDepth)
	}
	if st.InnerNodes != 3 || st.LeafNodes != 3 {
		t.Errorf("inner/leaf nodes = %d/%d, want 3/3", st.InnerNodes, st.LeafNodes)
	}
	if st.InnerPaths != 4 || st.LeafPaths != 6 {
		t.Errorf("inner/leaf paths = %d/%d, want 4/6", st.InnerPaths, st.LeafPaths)
	}
}

func TestPathAccessors(t *testing.T) {
	s := buildPO2()
	p, ok := s.FindPath("DeliverTo.Address.City")
	if !ok {
		t.Fatal("FindPath failed")
	}
	if p.Name() != "City" || p.Len() != 3 {
		t.Errorf("Name/Len = %s/%d", p.Name(), p.Len())
	}
	if p.LongName() != "DeliverToAddressCity" {
		t.Errorf("LongName = %s", p.LongName())
	}
	parent, ok := p.Parent()
	if !ok || parent.String() != "DeliverTo.Address" {
		t.Errorf("Parent = %s, %v", parent, ok)
	}
	if !p.HasPrefix(parent) {
		t.Error("HasPrefix(parent) = false")
	}
	top, _ := s.FindPath("DeliverTo")
	if _, ok := top.Parent(); ok {
		t.Error("top-level path should have no parent")
	}
	if got := strings.Join(p.Names(), "/"); got != "DeliverTo/Address/City" {
		t.Errorf("Names = %s", got)
	}
}

func TestChildAndLeafPaths(t *testing.T) {
	s := buildPO2()
	deliver, _ := s.FindPath("DeliverTo")
	kids := deliver.ChildPaths()
	if len(kids) != 1 || kids[0].String() != "DeliverTo.Address" {
		t.Fatalf("ChildPaths = %v", kids)
	}
	leaves := deliver.LeafPaths()
	if len(leaves) != 3 {
		t.Fatalf("got %d leaf paths, want 3", len(leaves))
	}
	if leaves[1].String() != "DeliverTo.Address.City" {
		t.Errorf("leaves[1] = %s", leaves[1])
	}
	// A leaf path's LeafPaths is itself.
	city := leaves[1]
	self := city.LeafPaths()
	if len(self) != 1 || !self[0].Equal(city) {
		t.Errorf("LeafPaths of leaf = %v", self)
	}
}

func TestValidateCycle(t *testing.T) {
	s := New("bad")
	a := NewNode("A")
	b := NewNode("B")
	a.AddChild(b)
	b.AddChild(a)
	s.Root.AddChild(a)
	if err := s.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateDuplicateChild(t *testing.T) {
	s := New("dup")
	a := NewNode("A")
	b := NewNode("B")
	a.AddChild(b)
	a.AddChild(b)
	s.Root.AddChild(a)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("expected duplicate-child error, got %v", err)
	}
}

func TestValidateUnnamed(t *testing.T) {
	s := New("anon")
	s.Root.AddChild(&Node{})
	if err := s.Validate(); err == nil {
		t.Fatal("expected unnamed-node error")
	}
}

func TestInvalidateRecomputesPaths(t *testing.T) {
	s := buildPO1()
	if len(s.Paths()) != 12 {
		t.Fatalf("PO1 paths = %d, want 12", len(s.Paths()))
	}
	extra := &Node{Name: "orderDate", TypeName: "DATE"}
	s.Root.Children()[0].AddChild(extra)
	if len(s.Paths()) != 12 {
		t.Fatal("cache should still be in effect")
	}
	s.Invalidate()
	if len(s.Paths()) != 13 {
		t.Fatalf("after Invalidate paths = %d, want 13", len(s.Paths()))
	}
}

func TestAnnotationsAndRefs(t *testing.T) {
	s := buildPO1()
	ship := s.Root.Children()[0]
	cust := s.Root.Children()[1]
	ship.Children()[1].AddRef(cust) // custNo references Customer
	if got := ship.Children()[1].Refs(); len(got) != 1 || got[0] != cust {
		t.Fatalf("Refs = %v", got)
	}
	n := ship.Children()[0]
	if n.Annotation("primaryKey") != "" {
		t.Error("unset annotation should be empty")
	}
	n.SetAnnotation("primaryKey", "true")
	if n.Annotation("primaryKey") != "true" {
		t.Error("annotation roundtrip failed")
	}
}

func TestParentsTracking(t *testing.T) {
	s := buildPO2()
	var addr *Node
	for _, n := range s.Nodes() {
		if n.Name == "Address" {
			addr = n
		}
	}
	if addr == nil || len(addr.Parents()) != 2 {
		t.Fatalf("Address parents = %v", addr.Parents())
	}
}

func TestSortChildren(t *testing.T) {
	s := buildPO1()
	s.SortChildren()
	top := s.Root.Children()
	if top[0].Name != "Customer" || top[1].Name != "ShipTo" {
		t.Errorf("top-level order = %s, %s", top[0].Name, top[1].Name)
	}
}

func TestStringRendering(t *testing.T) {
	s := buildPO2()
	out := s.String()
	if !strings.Contains(out, "City : xsd:string") {
		t.Errorf("String() missing typed leaf:\n%s", out)
	}
	// Shared fragment rendered under both parents.
	if strings.Count(out, "Address") != 2 {
		t.Errorf("expected Address twice:\n%s", out)
	}
}

// TestVersionBumpsOnInvalidate pins the mutation counter contract:
// Version increases exactly on Invalidate (including via
// SortChildren), so index caches can detect structural edits without
// re-enumerating paths.
func TestVersionBumpsOnInvalidate(t *testing.T) {
	s := New("V")
	s.Root.AddChild(NewNode("a"))
	v0 := s.Version()
	_ = s.Paths() // enumeration does not mutate the version
	if s.Version() != v0 {
		t.Error("Paths() must not bump the version")
	}
	s.Invalidate()
	if s.Version() != v0+1 {
		t.Errorf("Version after Invalidate = %d, want %d", s.Version(), v0+1)
	}
	s.SortChildren() // calls Invalidate internally
	if s.Version() != v0+2 {
		t.Errorf("Version after SortChildren = %d, want %d", s.Version(), v0+2)
	}
}
