package schema

// Stats summarizes the structural characteristics the paper reports for
// its test schemas (Table 5): depth, node and path counts, split into
// inner and leaf elements.
type Stats struct {
	Name       string
	MaxDepth   int
	Nodes      int
	Paths      int
	InnerNodes int
	InnerPaths int
	LeafNodes  int
	LeafPaths  int
}

// ComputeStats derives the Table 5 characteristics for s.
func ComputeStats(s *Schema) Stats {
	st := Stats{Name: s.Name}
	for _, n := range s.Nodes() {
		st.Nodes++
		if n.IsLeaf() {
			st.LeafNodes++
		} else {
			st.InnerNodes++
		}
	}
	for _, p := range s.Paths() {
		st.Paths++
		if p.Len() > st.MaxDepth {
			st.MaxDepth = p.Len()
		}
		if p.Leaf().IsLeaf() {
			st.LeafPaths++
		} else {
			st.InnerPaths++
		}
	}
	return st
}
