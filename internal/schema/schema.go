// Package schema implements COMA's internal schema representation:
// rooted directed acyclic graphs whose nodes are schema elements
// (relational tables and columns, XML elements and attributes) connected
// by directed links of different kinds, e.g. containment and referential
// relationships (Do & Rahm, VLDB 2002, Section 3).
//
// Schemas imported from external sources (relational DDL, XML Schema) are
// converted into this format, on which all match algorithms operate.
// Schema elements are identified by their paths: sequences of nodes
// following containment links from the root. Shared fragments — a node
// reachable from the root via more than one containment chain — yield
// multiple paths for which match candidates are determined independently.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// LinkKind distinguishes the directed link types of the schema graph.
type LinkKind int

const (
	// Containment links connect an element to its structural children
	// (table → column, complex element → sub-element). Paths follow
	// containment links only.
	Containment LinkKind = iota
	// Reference links model referential relationships such as foreign
	// keys and XSD type references. They do not contribute to paths but
	// are available to structural matchers.
	Reference
)

// String returns the link kind name.
func (k LinkKind) String() string {
	switch k {
	case Containment:
		return "containment"
	case Reference:
		return "reference"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Kind classifies the origin of a schema element. It is informational:
// matchers rely on names, types and structure, not on the element kind.
type Kind int

const (
	// ElemUnknown marks elements without a recorded origin.
	ElemUnknown Kind = iota
	// ElemSchema is the root node representing the schema itself.
	ElemSchema
	// ElemTable is a relational table.
	ElemTable
	// ElemColumn is a relational column.
	ElemColumn
	// ElemComplex is an XML element with complex content.
	ElemComplex
	// ElemSimple is an XML element or attribute with simple content.
	ElemSimple
)

// String returns the element kind name.
func (k Kind) String() string {
	switch k {
	case ElemSchema:
		return "schema"
	case ElemTable:
		return "table"
	case ElemColumn:
		return "column"
	case ElemComplex:
		return "complex"
	case ElemSimple:
		return "simple"
	default:
		return "unknown"
	}
}

// Node is a schema element: a vertex of the schema graph. A node may be
// the child of several parents (shared fragment); path enumeration then
// produces one path per distinct containment chain.
type Node struct {
	// Name is the element name as it appears in the source schema.
	Name string
	// TypeName is the declared data type, e.g. "VARCHAR(200)" or
	// "xsd:string". Empty for inner elements without a simple type.
	TypeName string
	// Kind records the element's origin.
	Kind Kind
	// Annotations carries free-form source metadata (e.g. "primaryKey").
	Annotations map[string]string

	children []*Node
	refs     []*Node
	parents  []*Node
}

// NewNode returns a node with the given name.
func NewNode(name string) *Node { return &Node{Name: name} }

// AddChild appends child to n's containment children and records n as a
// parent of child. Adding the same child twice is an error surfaced by
// Schema.Validate (duplicate edge), not here, to keep builders simple.
func (n *Node) AddChild(child *Node) {
	n.children = append(n.children, child)
	child.parents = append(child.parents, n)
}

// AddRef records a referential link from n to target (e.g. foreign key).
func (n *Node) AddRef(target *Node) { n.refs = append(n.refs, target) }

// Children returns the containment children in insertion order.
// The returned slice must not be modified.
func (n *Node) Children() []*Node { return n.children }

// Refs returns the referential link targets in insertion order.
// The returned slice must not be modified.
func (n *Node) Refs() []*Node { return n.refs }

// Parents returns the nodes that contain n. The returned slice must not
// be modified.
func (n *Node) Parents() []*Node { return n.parents }

// IsLeaf reports whether n has no containment children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// Annotation returns the value recorded under key, or "".
func (n *Node) Annotation(key string) string {
	if n.Annotations == nil {
		return ""
	}
	return n.Annotations[key]
}

// SetAnnotation records a key/value pair on the node.
func (n *Node) SetAnnotation(key, value string) {
	if n.Annotations == nil {
		n.Annotations = make(map[string]string)
	}
	n.Annotations[key] = value
}

// Schema is a rooted DAG of schema elements. The zero value is not
// usable; construct with New.
type Schema struct {
	// Name identifies the schema (e.g. "PO1"); it doubles as the root
	// node's name and as the repository key.
	Name string
	// Root is the synthetic root node representing the schema.
	Root *Node

	// paths caches the enumeration; invalidated by Invalidate.
	paths []Path
	// version counts Invalidate calls: every structural mutation is
	// (per the Invalidate contract) followed by one, so consumers
	// caching schema-derived state (analysis.SchemaIndex) compare the
	// version they captured at build time against Version() instead of
	// re-enumerating paths to detect staleness. Atomic because cache
	// maintenance legally reads one schema's version while an
	// unrelated schema is being matched (e.g. the engine-scoped column
	// cache pruning stale entries) — mutating a schema during ITS own
	// match remains forbidden.
	version atomic.Int64
}

// New returns an empty schema whose root node carries the given name.
func New(name string) *Schema {
	root := &Node{Name: name, Kind: ElemSchema}
	return &Schema{Name: name, Root: root}
}

// Invalidate discards cached derived state (path enumeration) and
// bumps the schema's mutation version. Call it after structurally
// modifying the graph — including in-place node edits (renames, type
// changes) that leave the path count intact: the version bump is what
// lets index caches detect such edits reliably.
func (s *Schema) Invalidate() {
	s.paths = nil
	s.version.Add(1)
}

// Version returns the schema's mutation counter; it increases on every
// Invalidate. A cached artifact built at version v is stale iff
// Version() != v (assuming mutations honor the Invalidate contract).
func (s *Schema) Version() int64 { return s.version.Load() }

// Paths enumerates all element paths of the schema in depth-first,
// insertion order: every sequence of nodes from the root following
// containment links, excluding the bare root itself. Shared fragments
// yield one path per containment chain. The result is cached.
func (s *Schema) Paths() []Path {
	if s.paths != nil {
		return s.paths
	}
	var out []Path
	var walk func(prefix []*Node, n *Node)
	walk = func(prefix []*Node, n *Node) {
		cur := make([]*Node, len(prefix)+1)
		copy(cur, prefix)
		cur[len(prefix)] = n
		out = append(out, Path{nodes: cur})
		for _, c := range n.children {
			walk(cur, c)
		}
	}
	for _, c := range s.Root.children {
		walk(nil, c)
	}
	s.paths = out
	return out
}

// LeafPaths returns the paths whose terminal node is a leaf.
func (s *Schema) LeafPaths() []Path {
	var out []Path
	for _, p := range s.Paths() {
		if p.Leaf().IsLeaf() {
			out = append(out, p)
		}
	}
	return out
}

// InnerPaths returns the paths whose terminal node has children.
func (s *Schema) InnerPaths() []Path {
	var out []Path
	for _, p := range s.Paths() {
		if !p.Leaf().IsLeaf() {
			out = append(out, p)
		}
	}
	return out
}

// Nodes returns the distinct nodes reachable from the root via
// containment links, in first-visit depth-first order.
func (s *Schema) Nodes() []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, c := range s.Root.children {
		walk(c)
	}
	return out
}

// FindPath returns the path with the given dotted string form, or false.
func (s *Schema) FindPath(dotted string) (Path, bool) {
	for _, p := range s.Paths() {
		if p.String() == dotted {
			return p, true
		}
	}
	return Path{}, false
}

// Validate checks the structural invariants of the schema graph:
// the containment relation must be acyclic, every node reachable from
// the root, no node may contain the same child twice, and every element
// must have a non-empty name. It returns the first violation found.
func (s *Schema) Validate() error {
	if s.Root == nil {
		return fmt.Errorf("schema %q: nil root", s.Name)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Node]int)
	var visit func(n *Node, trail []string) error
	visit = func(n *Node, trail []string) error {
		if n.Name == "" {
			return fmt.Errorf("schema %q: unnamed node under %s", s.Name, strings.Join(trail, "."))
		}
		switch color[n] {
		case grey:
			return fmt.Errorf("schema %q: containment cycle through %q (via %s)", s.Name, n.Name, strings.Join(trail, "."))
		case black:
			return nil // shared fragment: fine in a DAG
		}
		color[n] = grey
		dup := make(map[*Node]bool)
		for _, c := range n.children {
			if dup[c] {
				return fmt.Errorf("schema %q: node %q contains child %q twice", s.Name, n.Name, c.Name)
			}
			dup[c] = true
			if err := visit(c, append(trail, n.Name)); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	return visit(s.Root, nil)
}

// String renders the schema as an indented containment tree, expanding
// shared fragments at every occurrence; handy in tests and the CLI.
func (s *Schema) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Name)
		if n.TypeName != "" {
			b.WriteString(" : ")
			b.WriteString(n.TypeName)
		}
		b.WriteByte('\n')
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(s.Root, 0)
	return b.String()
}

// SortChildren recursively orders every node's children by name. The
// importers preserve source order; tests use this for canonical output.
func (s *Schema) SortChildren() {
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		sort.SliceStable(n.children, func(i, j int) bool {
			return n.children[i].Name < n.children[j].Name
		})
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.Root)
	s.Invalidate()
}
