package schema

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// randomDAG builds a random schema DAG: a forest with occasional shared
// fragments, always valid by construction.
func randomDAG(r *rand.Rand) *Schema {
	s := New("rand")
	levels := [][]*Node{}
	depth := 2 + r.Intn(4)
	for d := 0; d < depth; d++ {
		width := 1 + r.Intn(5)
		level := make([]*Node, width)
		for i := range level {
			level[i] = NewNode("n" + strconv.Itoa(d) + "_" + strconv.Itoa(i))
			if d == depth-1 {
				level[i].TypeName = "xsd:string"
			}
		}
		levels = append(levels, level)
	}
	for _, n := range levels[0] {
		s.Root.AddChild(n)
	}
	// Each node of level d gets 1..3 distinct children from level d+1;
	// children may be shared between parents (DAG).
	for d := 0; d+1 < depth; d++ {
		for _, parent := range levels[d] {
			k := 1 + r.Intn(3)
			seen := map[int]bool{}
			for c := 0; c < k; c++ {
				idx := r.Intn(len(levels[d+1]))
				if seen[idx] {
					continue
				}
				seen[idx] = true
				parent.AddChild(levels[d+1][idx])
			}
		}
	}
	return s
}

// TestPropertyPathInvariants validates structural invariants over
// random DAGs:
//   - Validate passes (construction is acyclic)
//   - every path's parent chain is itself an enumerated path
//   - path keys are unique
//   - leaf + inner path counts partition the total
//   - LeafPaths of every path stays within the enumeration
func TestPropertyPathInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomDAG(r)
		if err := s.Validate(); err != nil {
			return false
		}
		paths := s.Paths()
		byKey := make(map[string]bool, len(paths))
		for _, p := range paths {
			if byKey[p.String()] {
				return false // duplicate key
			}
			byKey[p.String()] = true
		}
		for _, p := range paths {
			if parent, ok := p.Parent(); ok && !byKey[parent.String()] {
				return false // orphan
			}
			for _, lp := range p.LeafPaths() {
				if !byKey[lp.String()] {
					return false
				}
				if !lp.HasPrefix(p) {
					return false
				}
			}
		}
		if len(s.LeafPaths())+len(s.InnerPaths()) != len(paths) {
			return false
		}
		// Stats agree with direct enumeration.
		st := ComputeStats(s)
		return st.Paths == len(paths) && st.Nodes == len(s.Nodes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
