package schema

import "strings"

// Path identifies a schema element by its containment chain from the
// root: the match unit of COMA. Two paths over the same terminal node
// are distinct elements when the node is a shared fragment.
type Path struct {
	nodes []*Node
}

// PathOf builds a path from an explicit node chain. It is intended for
// tests and importers; Schema.Paths is the normal producer.
func PathOf(nodes ...*Node) Path { return Path{nodes: nodes} }

// Nodes returns the node chain, outermost first. The returned slice must
// not be modified.
func (p Path) Nodes() []*Node { return p.nodes }

// Len returns the number of nodes on the path (its depth).
func (p Path) Len() int { return len(p.nodes) }

// Leaf returns the terminal node of the path (which need not be a leaf
// of the schema graph; the name mirrors the path ending).
func (p Path) Leaf() *Node {
	if len(p.nodes) == 0 {
		return nil
	}
	return p.nodes[len(p.nodes)-1]
}

// Parent returns the path shortened by its terminal node, and false when
// p has no parent (top-level element).
func (p Path) Parent() (Path, bool) {
	if len(p.nodes) <= 1 {
		return Path{}, false
	}
	return Path{nodes: p.nodes[:len(p.nodes)-1]}, true
}

// Name returns the terminal element's name.
func (p Path) Name() string {
	if n := p.Leaf(); n != nil {
		return n.Name
	}
	return ""
}

// String renders the path in dotted form, e.g.
// "ShipTo.shipToCity". The schema root is not part of the path.
func (p Path) String() string {
	parts := make([]string, len(p.nodes))
	for i, n := range p.nodes {
		parts[i] = n.Name
	}
	return strings.Join(parts, ".")
}

// LongName concatenates all element names along the path into a single
// string without separators; the NamePath matcher tokenizes this (paper
// Section 4.2).
func (p Path) LongName() string {
	var b strings.Builder
	for _, n := range p.nodes {
		b.WriteString(n.Name)
	}
	return b.String()
}

// Names returns the element names along the path, outermost first.
func (p Path) Names() []string {
	out := make([]string, len(p.nodes))
	for i, n := range p.nodes {
		out[i] = n.Name
	}
	return out
}

// Equal reports whether two paths traverse the same node chain.
func (p Path) Equal(q Path) bool {
	if len(p.nodes) != len(q.nodes) {
		return false
	}
	for i := range p.nodes {
		if p.nodes[i] != q.nodes[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether q is a (proper or equal) leading sub-chain
// of p.
func (p Path) HasPrefix(q Path) bool {
	if len(q.nodes) > len(p.nodes) {
		return false
	}
	for i := range q.nodes {
		if p.nodes[i] != q.nodes[i] {
			return false
		}
	}
	return true
}

// Extend returns p with one more node appended.
func (p Path) Extend(n *Node) Path {
	nodes := make([]*Node, len(p.nodes)+1)
	copy(nodes, p.nodes)
	nodes[len(p.nodes)] = n
	return Path{nodes: nodes}
}

// ChildPaths returns one path per containment child of the terminal
// node, in declaration order.
func (p Path) ChildPaths() []Path {
	leaf := p.Leaf()
	if leaf == nil {
		return nil
	}
	out := make([]Path, 0, len(leaf.Children()))
	for _, c := range leaf.Children() {
		out = append(out, p.Extend(c))
	}
	return out
}

// LeafPaths returns the paths extending p down to every leaf reachable
// from its terminal node (the element set used by the Leaves matcher).
// If the terminal node is itself a leaf, the result is {p}.
func (p Path) LeafPaths() []Path {
	var out []Path
	var walk func(cur Path)
	walk = func(cur Path) {
		leaf := cur.Leaf()
		if leaf.IsLeaf() {
			out = append(out, cur)
			return
		}
		for _, c := range leaf.Children() {
			walk(cur.Extend(c))
		}
	}
	walk(p)
	return out
}
