package coma

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/repository"
	"repro/internal/reuse"
)

// Repository is the persistent store for schemas, similarity cubes and
// match results, backing the reuse-oriented matchers. It wraps the
// embedded log-structured engine in internal/repository.
type Repository struct {
	*repository.Repo
	// lastPrune records the most recent pruned MatchIncoming batch's
	// statistics (see LastPruneStats).
	lastPrune atomic.Pointer[PruneStats]
	// pruneTotals accumulates every pruned batch's statistics — the
	// monotonic counters behind PruneTotals and the served metrics.
	pruneTotals core.PruneCounters
	// storage carries the store's durability instruments (fsync,
	// group-commit, checkpoint timings and recovery outcomes).
	storage *repository.StorageMetrics
	// warmOnce gates the one startup warm restore; warm holds its
	// outcome (see RestoreWarm / WarmStart).
	warmOnce sync.Once
	warm     atomic.Pointer[WarmStats]
}

// RepositoryStats summarizes repository contents and log sizes.
type RepositoryStats = repository.Stats

// SyncPolicy selects when repository log appends reach stable storage:
// SyncAlways (fsync per append — the durable default), SyncInterval
// (group commit on a timer; a crash loses at most the last interval)
// or SyncNone (fsync only on close, checkpoint and compact).
type SyncPolicy = repository.SyncPolicy

// SyncAlways fsyncs after every append; an acknowledged write is never
// lost.
func SyncAlways() SyncPolicy { return repository.SyncAlways() }

// SyncInterval groups commits: appends return after the OS write and a
// background fsync runs every d (d <= 0 selects the default interval).
func SyncInterval(d time.Duration) SyncPolicy { return repository.SyncInterval(d) }

// SyncNone fsyncs only on Close, Checkpoint and Compact — for tests
// and bulk loads that can be replayed.
func SyncNone() SyncPolicy { return repository.SyncNone() }

// ParseSyncPolicy parses a policy from flag form: "always", "none",
// "interval", or a duration like "100ms".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return repository.ParseSyncPolicy(s) }

// RecoveryReport describes what opening a repository log found and did
// while replaying it (salvaged damage, torn tails, checkpoint use).
type RecoveryReport = repository.RecoveryReport

// VerifyReport is the result of an offline repository integrity check
// (comarepo fsck).
type VerifyReport = repository.VerifyReport

// VerifyStore checks a repository path — a single log file or a
// sharded repository directory — without modifying it.
func VerifyStore(path string) ([]*VerifyReport, error) { return repository.VerifyStore(path) }

// RepairStore opens (salvaging as needed) and closes every log under
// path, returning what each open recovered.
func RepairStore(path string) ([]*RecoveryReport, error) { return repository.RepairStore(path) }

// WithSyncPolicy selects the repository log's durability policy; the
// default is SyncAlways.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *Options) error {
		o.syncPolicy = p
		return nil
	}
}

// WithPageCache bounds the repository's page buffer pool at n pages
// (per shard for a sharded store). Checkpointed records are served
// from fixed-size pages through this pool, so n × page size is the
// resident memory ceiling for cold record access; a store larger than
// the pool still serves every record correctly, evicting pages
// clock-wise. 0 or less selects the storage engine's default.
func WithPageCache(n int) Option {
	return func(o *Options) error {
		o.pageCache = n
		return nil
	}
}

// PageCacheStats is a snapshot of a repository's page buffer pool
// (summed across shards for a sharded store): capacity and residency
// plus cumulative hit/miss/eviction counters.
type PageCacheStats = repository.PageCacheStats

// Mapping tags conventionally used by the evaluation.
const (
	// TagManual marks manually confirmed match results.
	TagManual = "manual"
	// TagAuto marks automatically derived match results.
	TagAuto = "auto"
)

// OpenRepository opens (creating if necessary) a repository file. The
// opts are read for storage settings (WithSyncPolicy); engine options
// are accepted and ignored, so one option list can configure both.
func OpenRepository(path string, opts ...Option) (*Repository, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	storage := repository.NewStorageMetrics()
	ropts := []repository.OpenOption{
		repository.WithSyncPolicy(o.syncPolicy),
		repository.WithMetrics(storage),
	}
	if o.pageCache > 0 {
		ropts = append(ropts, repository.WithPageCache(o.pageCache))
	}
	r, err := repository.Open(path, ropts...)
	if err != nil {
		return nil, fmt.Errorf("coma: open repository %s: %w", path, err)
	}
	return &Repository{Repo: r, storage: storage}, nil
}

// SchemaMatcher returns a reuse-oriented Schema matcher reading the
// mappings stored under tag: given schemas S1 and S2 it composes every
// stored pair of mappings S1↔S and S↔S2 via MatchCompose and
// aggregates the compositions.
func (r *Repository) SchemaMatcher(tag string) Matcher {
	return reuse.NewSchemaMatcher("Schema", r.MappingStore(tag))
}

// FragmentMatcher returns a reuse-oriented Fragment matcher
// transferring correspondences of shared schema fragments from the
// mappings stored under tag.
func (r *Repository) FragmentMatcher(tag string) Matcher {
	return reuse.NewFragmentMatcher("Fragment", r.MappingStore(tag))
}

// IncomingMatch is one outcome of MatchIncoming: a stored schema and
// the incoming schema's match result against it.
type IncomingMatch struct {
	// Schema is the stored candidate schema.
	Schema *Schema
	// Result is the batch match result for (incoming, Schema).
	Result *Result
}

// MatchIncoming matches an incoming schema against every schema stored
// in the repository in one Engine.MatchAll batch — the repository
// server's core operation: a new schema arrives and the store answers
// with the most similar known schemas and their mappings. Candidates
// sharing the incoming schema's name are skipped. Outcomes are ordered
// by descending combined schema similarity (name breaking ties); with
// TopK(n) only the n best survive.
func (r *Repository) MatchIncoming(e *Engine, incoming *Schema, opts ...MatchAllOption) ([]IncomingMatch, error) {
	return r.MatchIncomingContext(context.Background(), e, incoming, opts...)
}

// MatchIncomingContext is MatchIncoming under a request context: a
// done ctx stops the batch cooperatively (pair and row claims stop,
// pooled matrices are recycled, transient analyses evicted) and
// returns the cancellation cause. A never-canceled ctx yields results
// bit-identical to MatchIncoming.
func (r *Repository) MatchIncomingContext(ctx context.Context, e *Engine, incoming *Schema, opts ...MatchAllOption) ([]IncomingMatch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o matchAllOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	// The analyzer batch window opens BEFORE the store snapshot: a
	// DELETE completing in the gap between snapshot and the scheduler's
	// own window would lay no tombstone (no window open yet), and this
	// batch could re-publish the deleted schema's analysis. With the
	// window bracketing the snapshot, any delete that the snapshot can
	// still reference tombstones against it.
	end := e.o.ctx.BeginAnalysis()
	defer end()
	stored := r.Schemas()
	candidates := stored[:0:0]
	for _, s := range stored {
		if s.Name != incoming.Name {
			candidates = append(candidates, s)
		}
	}
	results, stats, err := e.matchCandidates(ctx, incoming, candidates, &o)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		r.lastPrune.Store(stats)
		r.pruneTotals.Record(*stats)
	}
	out := make([]IncomingMatch, 0, len(results))
	for i, res := range results {
		if res != nil {
			out = append(out, IncomingMatch{Schema: candidates[i], Result: res})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Result.SchemaSim != out[j].Result.SchemaSim {
			return out[i].Result.SchemaSim > out[j].Result.SchemaSim
		}
		return out[i].Schema.Name < out[j].Schema.Name
	})
	return out, nil
}

// MatchCompose composes two match results sharing a schema into a new
// match result, averaging similarities along the transitive step.
func MatchCompose(m1, m2 *Mapping) *Mapping {
	return reuse.MatchCompose(m1, m2, reuse.ComposeAverage)
}
