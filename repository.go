package coma

import (
	"repro/internal/repository"
	"repro/internal/reuse"
)

// Repository is the persistent store for schemas, similarity cubes and
// match results, backing the reuse-oriented matchers. It wraps the
// embedded log-structured engine in internal/repository.
type Repository struct {
	*repository.Repo
}

// Mapping tags conventionally used by the evaluation.
const (
	// TagManual marks manually confirmed match results.
	TagManual = "manual"
	// TagAuto marks automatically derived match results.
	TagAuto = "auto"
)

// OpenRepository opens (creating if necessary) a repository file.
func OpenRepository(path string) (*Repository, error) {
	r, err := repository.Open(path)
	if err != nil {
		return nil, err
	}
	return &Repository{Repo: r}, nil
}

// SchemaMatcher returns a reuse-oriented Schema matcher reading the
// mappings stored under tag: given schemas S1 and S2 it composes every
// stored pair of mappings S1↔S and S↔S2 via MatchCompose and
// aggregates the compositions.
func (r *Repository) SchemaMatcher(tag string) Matcher {
	return reuse.NewSchemaMatcher("Schema", r.MappingStore(tag))
}

// FragmentMatcher returns a reuse-oriented Fragment matcher
// transferring correspondences of shared schema fragments from the
// mappings stored under tag.
func (r *Repository) FragmentMatcher(tag string) Matcher {
	return reuse.NewFragmentMatcher("Fragment", r.MappingStore(tag))
}

// MatchCompose composes two match results sharing a schema into a new
// match result, averaging similarities along the transitive step.
func MatchCompose(m1, m2 *Mapping) *Mapping {
	return reuse.MatchCompose(m1, m2, reuse.ComposeAverage)
}
