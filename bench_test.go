// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), measuring the cost
// of regenerating the respective artifact, plus ablation benches for
// the Table 4 design choices. cmd/comabench prints the artifacts
// themselves.
package coma_test

import (
	"path/filepath"
	"sync"
	"testing"

	coma "repro"
	"repro/internal/combine"
	"repro/internal/eval"
	"repro/internal/importer"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/workload"
)

// --- shared fixtures --------------------------------------------------------

var (
	figOnce   sync.Once
	figPO1    *schema.Schema
	figPO2    *schema.Schema
	benchOnce sync.Once
	benchH    *eval.Harness
	benchRes  []eval.SeriesResult
)

func figureSchemas(b *testing.B) (*schema.Schema, *schema.Schema) {
	b.Helper()
	figOnce.Do(func() {
		var err error
		figPO1, err = importer.ParseSQL("PO1", ddlPO1)
		if err != nil {
			panic(err)
		}
		figPO2, err = importer.ParseXSD("PO2", []byte(xsdPO2))
		if err != nil {
			panic(err)
		}
	})
	return figPO1, figPO2
}

// warmHarness precomputes every matcher matrix and a representative
// result set once, so the per-series benchmarks measure combination and
// selection cost, mirroring COMA's cube-repository design.
func warmHarness(b *testing.B) (*eval.Harness, []eval.SeriesResult) {
	b.Helper()
	benchOnce.Do(func() {
		benchH = eval.NewHarness()
		benchH.Precompute(4)
		var specs []eval.SeriesSpec
		for _, set := range [][]string{{"NamePath"}, {"NamePath", "Leaves"}, eval.AllCombo, {"SchemaM"}} {
			for _, dir := range eval.Directions() {
				for _, sel := range []combine.Selection{
					{MaxN: 1}, {Threshold: 0.5, Delta: 0.02}, {Threshold: 0.8},
				} {
					specs = append(specs, eval.SeriesSpec{Matchers: set, Strategy: combine.Strategy{
						Agg: combine.AggSpec{Kind: combine.Average}, Dir: dir, Sel: sel,
					}})
				}
			}
		}
		benchRes = benchH.RunAll(specs, 4, nil)
	})
	return benchH, benchRes
}

// --- per-artifact benchmarks -------------------------------------------------

// BenchmarkTable1Cube regenerates Table 1: executing the TypeName and
// NamePath matchers on the Figure 1 schemas.
func BenchmarkTable1Cube(b *testing.B) {
	s1, s2 := figureSchemas(b)
	ctx := match.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := match.NewTypeName()
		np := match.NewNamePath()
		_ = tn.Match(ctx, s1, s2)
		_ = np.Match(ctx, s1, s2)
	}
}

// BenchmarkTable2Aggregate regenerates Table 2: aggregating the
// two-layer cube with Average.
func BenchmarkTable2Aggregate(b *testing.B) {
	s1, s2 := figureSchemas(b)
	ctx := match.NewContext()
	tn := match.NewTypeName().Match(ctx, s1, s2)
	np := match.NewNamePath().Match(ctx, s1, s2)
	cube := simcube.NewCube(tn.RowKeys(), tn.ColKeys())
	if err := cube.AddLayer("TypeName", tn); err != nil {
		b.Fatal(err)
	}
	if err := cube.AddLayer("NamePath", np); err != nil {
		b.Fatal(err)
	}
	agg := combine.AggSpec{Kind: combine.Average}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Apply(cube); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Stats regenerates Table 5: structural statistics of
// the five workload schemas.
func BenchmarkTable5Stats(b *testing.B) {
	ss := workload.Schemas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			_ = schema.ComputeStats(s)
		}
	}
}

// BenchmarkFig8ProblemSize regenerates Figure 8: deriving the gold
// standard and schema similarity for all ten tasks.
func BenchmarkFig8ProblemSize(b *testing.B) {
	ss := workload.Schemas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := 0; x < len(ss); x++ {
			for y := x + 1; y < len(ss); y++ {
				_ = workload.GoldMapping(ss[x], ss[y])
			}
		}
	}
}

// BenchmarkFig9Series measures one evaluation series (ten experiments)
// on the warmed harness: the unit the 8,208-series Figure 9 grid
// repeats.
func BenchmarkFig9Series(b *testing.B) {
	h, _ := warmHarness(b)
	spec := eval.SeriesSpec{Matchers: eval.AllCombo, Strategy: combine.Default()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.RunSeries(spec)
	}
}

// BenchmarkFig10Breakdown measures grouping series results into the
// Figure 10 strategy breakdowns.
func BenchmarkFig10Breakdown(b *testing.B) {
	_, results := warmHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dim := range []string{"aggregation", "direction", "selection"} {
			_ = eval.Fig10Breakdown(results, dim)
		}
	}
}

// BenchmarkFig11Single measures a single-matcher series (NamePath), the
// Figure 11 unit.
func BenchmarkFig11Single(b *testing.B) {
	h, _ := warmHarness(b)
	spec := eval.SeriesSpec{Matchers: []string{"NamePath"}, Strategy: combine.Default()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.RunSeries(spec)
	}
}

// BenchmarkFig12Combos measures the best reuse combination
// (All+SchemaM), the Figure 12 unit.
func BenchmarkFig12Combos(b *testing.B) {
	h, _ := warmHarness(b)
	spec := eval.SeriesSpec{
		Matchers: append(append([]string(nil), eval.AllCombo...), "SchemaM"),
		Strategy: combine.Default(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.RunSeries(spec)
	}
}

// BenchmarkFig13Sensitivity measures the per-task best-strategy scan of
// Figure 13 over a result set.
func BenchmarkFig13Sensitivity(b *testing.B) {
	h, results := warmHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Fig13Sensitivity(h, results)
	}
}

// BenchmarkDefaultMatch measures the full default match operation
// end-to-end (matcher execution + combination) on task 1<->2, across
// worker counts of the parallel engine.
func BenchmarkDefaultMatch(b *testing.B) {
	task := workload.Tasks()[0]
	for _, w := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coma.Match(task.S1, task.S2, coma.WithWorkers(w.workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNameSim measures one uncached hybrid name similarity: the
// unit cost the per-schema profile precomputation amortizes. A fresh
// matcher per iteration keeps both the pair cache and the profile
// cache cold.
func BenchmarkNameSim(b *testing.B) {
	ctx := match.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nm := match.NewName()
		_ = nm.NameSim(ctx, "POShipToCustomer", "DeliverToAddress")
	}
}

// BenchmarkNameSimProfiled measures the same similarity with warm
// profile cache but cold pair cache: the steady-state per-pair cost
// inside a matrix fill.
func BenchmarkNameSimProfiled(b *testing.B) {
	ctx := match.NewContext()
	nm := match.NewName()
	_ = nm.NameSim(ctx, "POShipToCustomer", "DeliverToAddress")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nm.SetCombSim(combine.CombAverage) // drops the pair cache, keeps profiles
		_ = nm.NameSim(ctx, "POShipToCustomer", "DeliverToAddress")
	}
}

// --- ablation benchmarks (Table 4 design choices) ----------------------------

// BenchmarkAblationNameMaxVsAverage compares the Name matcher's default
// Max token aggregation against Average.
func BenchmarkAblationNameMaxVsAverage(b *testing.B) {
	s1, s2 := figureSchemas(b)
	ctx := match.NewContext()
	avgStrategy := combine.Strategy{
		Agg:  combine.AggSpec{Kind: combine.Average},
		Dir:  combine.Both,
		Sel:  combine.Selection{MaxN: 1},
		Comb: combine.CombAverage,
	}
	b.Run("Max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = match.NewName().Match(ctx, s1, s2)
		}
	})
	b.Run("Average", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := match.NewCustomName("NameAvg", avgStrategy, match.Trigram(), match.Synonym())
			_ = m.Match(ctx, s1, s2)
		}
	})
}

// BenchmarkAblationChildrenVsLeaves compares the two structural
// matchers on the largest task.
func BenchmarkAblationChildrenVsLeaves(b *testing.B) {
	task := workload.Tasks()[9] // 4<->5
	ctx := match.NewContext()
	b.Run("Children", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = match.NewChildren().Match(ctx, task.S1, task.S2)
		}
	})
	b.Run("Leaves", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = match.NewLeaves().Match(ctx, task.S1, task.S2)
		}
	})
}

// BenchmarkAblationTypeNameWeights compares the default 0.3/0.7 weight
// split against alternatives.
func BenchmarkAblationTypeNameWeights(b *testing.B) {
	task := workload.Tasks()[0]
	ctx := match.NewContext()
	for _, w := range []struct {
		name       string
		typeW, nmW float64
	}{
		{"0.3-0.7", 0.3, 0.7},
		{"0.5-0.5", 0.5, 0.5},
		{"0.0-1.0", 0, 1},
	} {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = match.NewWeightedTypeName(w.typeW, w.nmW).Match(ctx, task.S1, task.S2)
			}
		})
	}
}

// BenchmarkPrunedMatchAll measures the candidate-pruned TopK
// repository match against a 208-schema corpus slice (13 full
// evolution families, so the probe's family exceeds the TopK), with
// the exhaustive scan it is bit-identical to as the sub-benchmark
// baseline — the bench-smoke form of the MatchServe/10k scenarios in
// cmd/comabench.
func BenchmarkPrunedMatchAll(b *testing.B) {
	stored, incoming := workload.CorpusPair(208, 3)
	repo, err := coma.OpenRepository(filepath.Join(b.TempDir(), "pruned.repo"))
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	engine, err := coma.NewEngine(coma.WithCandidateIndex())
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			b.Fatal(err)
		}
	}
	// One warmup analyzes and indexes the stored schemas, so both
	// sub-benchmarks measure the serving steady state.
	if _, err := repo.MatchIncoming(engine, incoming, coma.TopK(10)); err != nil {
		b.Fatal(err)
	}
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := repo.MatchIncoming(engine, incoming, coma.TopK(10)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := repo.MatchIncoming(engine, incoming, coma.TopK(10), coma.Exhaustive()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPutSchema measures the repository import path under the two
// serving durability policies: per-append fsync versus group commit.
// The gap is the price of SyncAlways's zero-loss guarantee.
func BenchmarkPutSchema(b *testing.B) {
	stored, _ := workload.CorpusPair(8, 3)
	s := stored[0]
	for _, bc := range []struct {
		name   string
		policy coma.SyncPolicy
	}{
		{"sync-always", coma.SyncAlways()},
		{"sync-interval", coma.SyncInterval(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			repo, err := coma.OpenRepository(filepath.Join(b.TempDir(), "put.repo"),
				coma.WithSyncPolicy(bc.policy))
			if err != nil {
				b.Fatal(err)
			}
			defer repo.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := repo.PutSchema(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
