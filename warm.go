package coma

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/match"
	"repro/internal/repository"
	"repro/internal/schema"
)

// Warm-restart sidecars persist the expensive in-memory state a
// repository server rebuilds on every boot: the stored schemas'
// analysis indexes (internal/analysis artifacts) and the persistent
// column cache's configuration-identified similarity columns. The
// sidecar is written next to the repository after every checkpoint and
// read once at open; a restored process seeds its analyzer caches,
// column caches and candidate-pruning index from it instead of
// re-analyzing the store.
//
// The sidecar is pure warmth, never truth: every layer that consumes a
// restored artifact validates it first, and a failed validation falls
// back to the cold path the artifact would have skipped.
//
//   - The whole file is discarded unless its magic, version and body
//     CRC check out and the auxiliary-source fingerprints (dictionary,
//     taxonomy, type table — dict.Fingerprint) equal the opening
//     process's. A restart with different synonym files must re-derive
//     every annotation.
//   - Each schema entry is discarded unless the CRC of the schema's
//     stored record payload still matches: an entry exported before a
//     schema was replaced warms nobody.
//   - analysis.RestoreIndex rejects malformed artifacts and analyzes
//     names the artifact does not cover fresh, so a stale-but-accepted
//     artifact can cost warmth, never correctness.
//
// Layout: magic, then a CRC32 (IEEE, little-endian) of the body, then
// the body — three source fingerprints, and per schema its name, the
// stored record payload's CRC32, the analysis artifact and the
// exported similarity columns.

// warmMagic identifies warm sidecar files; the trailing byte is the
// format version.
const warmMagic = "COMA.warm\x001\n"

// warmSuffix names the sidecar of a single-file repository
// ("<log>.warm"); sharded repositories use warmSnapName in their
// directory.
const warmSuffix = ".warm"

// warmSnapName is the sidecar file of a sharded repository directory.
const warmSnapName = "warm.snap"

// maxWarmSlice bounds decoded counts so a corrupt length cannot drive
// an allocation by itself.
const maxWarmSlice = 1 << 24

// WarmStats reports what a warm restore found and did; /readyz and
// comaserve's startup log surface it.
type WarmStats struct {
	// Attempted reports a sidecar file was present and read.
	Attempted bool
	// Used reports the sidecar passed whole-file validation (magic,
	// CRC, source fingerprints) and per-schema restoring ran.
	Used bool
	// Restored counts schemas whose analysis was seeded warm.
	Restored int
	// Discarded counts schema entries rejected individually (stored
	// payload CRC mismatch, schema gone, malformed artifact).
	Discarded int
	// Columns counts persistent similarity columns seeded.
	Columns int
}

// warmStore is the slice of the repository API the warm sidecar needs;
// *repository.Repo and *repository.Sharded both provide it.
type warmStore interface {
	Get(k repository.RecordKind, key string) ([]byte, bool)
	GetSchema(name string) (*schema.Schema, bool)
	SchemaNames() []string
}

// warmEntry is one schema's persisted warmth.
type warmEntry struct {
	name     string
	crc      uint32 // CRC32 of the schema's stored record payload
	artifact []byte // analysis.ExportIndex
	cols     []match.ColumnArtifact
}

// sourceFingerprints snapshots the auxiliary sources' content
// fingerprints in sidecar order (dictionary, taxonomy, type table).
func sourceFingerprints(src analysis.Sources) [3]uint64 {
	return [3]uint64{src.Dict.Fingerprint(), src.Taxonomy.Fingerprint(), src.Types.Fingerprint()}
}

type warmEnc struct{ buf []byte }

func (e *warmEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *warmEnc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *warmEnc) u32(v uint32)     { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *warmEnc) u64(v uint64)     { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *warmEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func encodeWarm(fps [3]uint64, entries []warmEntry) []byte {
	body := &warmEnc{buf: make([]byte, 0, 1024)}
	for _, fp := range fps {
		body.u64(fp)
	}
	body.uvarint(uint64(len(entries)))
	for _, ent := range entries {
		body.str(ent.name)
		body.u32(ent.crc)
		body.uvarint(uint64(len(ent.artifact)))
		body.buf = append(body.buf, ent.artifact...)
		body.uvarint(uint64(len(ent.cols)))
		for _, c := range ent.cols {
			body.str(c.OwnerKey)
			body.varint(int64(c.Comb))
			body.varint(int64(c.Set))
			body.str(c.Name)
			body.uvarint(uint64(len(c.Col)))
			for _, v := range c.Col {
				body.u64(math.Float64bits(v))
			}
		}
	}
	out := &warmEnc{buf: make([]byte, 0, len(warmMagic)+4+len(body.buf))}
	out.buf = append(out.buf, warmMagic...)
	out.u32(crc32.ChecksumIEEE(body.buf))
	out.buf = append(out.buf, body.buf...)
	return out.buf
}

type warmDec struct {
	buf []byte
	off int
	err error
}

func (d *warmDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("coma: warm sidecar: truncated %s at offset %d", what, d.off)
	}
}

func (d *warmDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *warmDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *warmDec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *warmDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *warmDec) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("bytes")
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *warmDec) str() string { return string(d.bytes(d.uvarint())) }

// decodeWarm parses a sidecar file: magic, body CRC, fingerprints and
// schema entries. Any mismatch or truncation is an error — the caller
// discards the whole sidecar.
func decodeWarm(data []byte) (fps [3]uint64, entries []warmEntry, err error) {
	if len(data) < len(warmMagic)+4 || string(data[:len(warmMagic)]) != warmMagic {
		return fps, nil, fmt.Errorf("coma: warm sidecar: bad magic")
	}
	body := data[len(warmMagic)+4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(warmMagic):]) {
		return fps, nil, fmt.Errorf("coma: warm sidecar: body CRC mismatch")
	}
	d := &warmDec{buf: body}
	for i := range fps {
		fps[i] = d.u64()
	}
	n := d.uvarint()
	if n > maxWarmSlice {
		d.fail("entry count")
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var ent warmEntry
		ent.name = d.str()
		ent.crc = d.u32()
		ent.artifact = d.bytes(d.uvarint())
		nCols := d.uvarint()
		if nCols > maxWarmSlice {
			d.fail("column count")
			break
		}
		for c := uint64(0); c < nCols && d.err == nil; c++ {
			col := match.ColumnArtifact{
				OwnerKey: d.str(),
				Comb:     combine.CombSim(d.varint()),
				Set:      int8(d.varint()),
				Name:     d.str(),
			}
			nVals := d.uvarint()
			if nVals > maxWarmSlice {
				d.fail("value count")
				break
			}
			col.Col = make([]float64, 0, nVals)
			for v := uint64(0); v < nVals && d.err == nil; v++ {
				col.Col = append(col.Col, math.Float64frombits(d.u64()))
			}
			ent.cols = append(ent.cols, col)
		}
		entries = append(entries, ent)
	}
	if d.err != nil {
		return fps, nil, d.err
	}
	if d.off != len(body) {
		return fps, nil, fmt.Errorf("coma: warm sidecar: %d trailing bytes", len(body)-d.off)
	}
	return fps, entries, nil
}

// collectWarm snapshots every stored schema whose analysis one of the
// engines currently caches: its analysis artifact, the CRC of its
// stored record payload (the restore-side staleness gate) and the
// persistent columns cached against its index. Schemas nobody analyzed
// yet are skipped — they would warm nothing.
func collectWarm(store warmStore, engines []*Engine) []warmEntry {
	var out []warmEntry
	for _, name := range store.SchemaNames() {
		s, ok := store.GetSchema(name)
		if !ok {
			continue
		}
		var idx *analysis.SchemaIndex
		var cols []match.ColumnArtifact
		for _, e := range engines {
			a := e.o.ctx.Analyzer
			if a == nil {
				continue
			}
			if idx = a.Peek(s); idx != nil {
				if cc := e.o.ctx.Columns; cc != nil {
					cols = cc.Export(idx)
				}
				break
			}
		}
		if idx == nil {
			continue
		}
		payload, ok := store.Get(repository.RecSchemas, name)
		if !ok {
			continue
		}
		out = append(out, warmEntry{
			name:     name,
			crc:      crc32.ChecksumIEEE(payload),
			artifact: analysis.ExportIndex(idx),
			cols:     cols,
		})
	}
	return out
}

// writeWarm collects and atomically writes the sidecar; fsys nil
// selects the real filesystem (tests inject a FaultFS).
func writeWarm(fsys repository.FS, path string, store warmStore, engines []*Engine) error {
	data := encodeWarm(sourceFingerprints(engines[0].o.ctx.Sources()), collectWarm(store, engines))
	return repository.AtomicWriteFile(fsys, path, data)
}

// restoreWarm reads a sidecar and seeds the engines: each surviving
// schema's index goes into every engine's analyzer (a stored schema's
// analysis can be consulted by any engine — it travels as the incoming
// side of fan-outs), its columns into every engine's persistent column
// cache, and the index into the owning engine's candidate-pruning
// segment. owner maps a schema name to its owning engine's slot.
func restoreWarm(path string, store warmStore, engines []*Engine, owner func(name string) int) WarmStats {
	var ws WarmStats
	data, err := os.ReadFile(path)
	if err != nil {
		return ws
	}
	ws.Attempted = true
	fps, entries, err := decodeWarm(data)
	if err != nil {
		return ws
	}
	src := engines[0].o.ctx.Sources()
	if fps != sourceFingerprints(src) {
		return ws
	}
	ws.Used = true
	for _, ent := range entries {
		payload, ok := store.Get(repository.RecSchemas, ent.name)
		if !ok || crc32.ChecksumIEEE(payload) != ent.crc {
			ws.Discarded++
			continue
		}
		s, ok := store.GetSchema(ent.name)
		if !ok {
			ws.Discarded++
			continue
		}
		idx, err := analysis.RestoreIndex(s, src, ent.artifact)
		if err != nil {
			ws.Discarded++
			continue
		}
		for _, e := range engines {
			if a := e.o.ctx.Analyzer; a != nil {
				a.Seed(s, idx)
			}
			if cc := e.o.ctx.Columns; cc != nil {
				cc.Seed(idx, ent.cols)
			}
		}
		if oe := engines[owner(ent.name)]; oe.o.candIdx != nil {
			oe.o.candIdx.Add(s, idx)
		}
		ws.Restored++
		ws.Columns += len(ent.cols)
	}
	return ws
}

// warmPath returns the single-store repository's sidecar path.
func (r *Repository) warmPath() string { return r.Repo.Path() + warmSuffix }

// SaveWarm writes the repository's warm-restart sidecar: the analysis
// artifacts and persistent similarity columns the engine currently
// caches for the stored schemas. Call it after Checkpoint (the sharded
// store's Checkpoint does so itself) so the next open finds both the
// paged snapshot and the warmth to serve it with.
func (r *Repository) SaveWarm(e *Engine) error {
	return writeWarm(nil, r.warmPath(), r.Repo, []*Engine{e})
}

// RestoreWarm seeds the engine from the repository's warm sidecar, if
// one is present and valid — Repository.Handler calls it, so served
// single-store repositories restart warm automatically. Only the first
// call restores; later calls return the recorded outcome.
func (r *Repository) RestoreWarm(e *Engine) WarmStats {
	r.warmOnce.Do(func() {
		ws := restoreWarm(r.warmPath(), r.Repo, []*Engine{e}, func(string) int { return 0 })
		r.warm.Store(&ws)
	})
	return r.WarmStart()
}

// WarmStart reports the outcome of the repository's startup warm
// restore (zero value before RestoreWarm ran).
func (r *Repository) WarmStart() WarmStats {
	if ws := r.warm.Load(); ws != nil {
		return *ws
	}
	return WarmStats{}
}

// warmPath returns the sharded repository's sidecar path.
func (r *ShardedRepository) warmPath() string {
	return filepath.Join(r.Sharded.Dir(), warmSnapName)
}

// SaveWarm writes the sharded repository's warm-restart sidecar from
// the shard engines' caches; Checkpoint calls it automatically.
func (r *ShardedRepository) SaveWarm() error {
	return writeWarm(nil, r.warmPath(), r.Sharded, r.engines)
}

// Checkpoint compacts every shard log into its paged snapshot and then
// writes the warm-restart sidecar, so a following open both replays
// almost nothing and skips re-analyzing the store. A sidecar write
// failure is reported but does not undo the checkpoint.
func (r *ShardedRepository) Checkpoint() error {
	if err := r.Sharded.Checkpoint(); err != nil {
		return err
	}
	return r.SaveWarm()
}

// restoreWarmAtOpen runs the startup warm restore;
// OpenShardedRepository calls it once the engines are wired.
func (r *ShardedRepository) restoreWarmAtOpen() {
	ws := restoreWarm(r.warmPath(), r.Sharded, r.engines, r.ShardFor)
	r.warm.Store(&ws)
}

// WarmStart reports the outcome of the sharded repository's startup
// warm restore.
func (r *ShardedRepository) WarmStart() WarmStats {
	if ws := r.warm.Load(); ws != nil {
		return *ws
	}
	return WarmStats{}
}
