package coma_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	coma "repro"
	"repro/internal/workload"
)

// monotonicSeries reports whether a series must never decrease:
// counters and histogram accumulations are monotonic, gauges (queue
// depth, cache entries, schema count) legitimately fluctuate.
func monotonicSeries(name string) bool {
	return strings.HasSuffix(name, "_total") ||
		strings.HasSuffix(name, "_count") ||
		strings.HasSuffix(name, "_sum")
}

// TestMetricsMonotonicUnderChurn hammers a served sharded repository
// with concurrent PUT/DELETE/match churn while a watcher snapshots the
// metrics registry the whole time: every counter-like series must be
// monotonic across snapshots, and afterwards the request counter must
// equal exactly the number of requests issued — no lost or double
// counts under contention.
func TestMetricsMonotonicUnderChurn(t *testing.T) {
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), "churn"), 2,
		coma.WithSyncPolicy(coma.SyncNone()),
		coma.WithPersistentColumnCache(),
		coma.WithCandidateIndex())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	handler := repo.Handler()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	cands := workload.Candidates(12)
	stable := cands[:4] // always stored: the match targets
	churn := cands[4:]  // put and deleted concurrently, two per worker
	for _, s := range stable {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	const iters = 5
	var requests atomic.Int64
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		prev := make(map[string]float64)
		for {
			m, ok := handler.Metrics()
			if !ok {
				t.Error("Metrics() not ok on default handler")
				return
			}
			for _, s := range m.Samples {
				if !monotonicSeries(s.Name) {
					continue
				}
				key := s.Name + "|" + s.Labels
				if s.Value < prev[key] {
					t.Errorf("series %s{%s} went backwards: %v -> %v",
						s.Name, s.Labels, prev[key], s.Value)
				}
				prev[key] = s.Value
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := churn[w*2 : w*2+2]
			for i := 0; i < iters; i++ {
				s := mine[i%2]
				if _, err := client.PutSchemaGraph(ctx, s); err != nil {
					t.Error(err)
				}
				requests.Add(1)
				if _, err := client.MatchStored(ctx, stable[w%len(stable)].Name, 3); err != nil {
					t.Error(err)
				}
				requests.Add(1)
				if err := client.DeleteSchema(ctx, s.Name); err != nil {
					t.Error(err)
				}
				requests.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-watcherDone

	m, ok := handler.Metrics()
	if !ok {
		t.Fatal("Metrics() not ok after churn")
	}
	if got, want := m.Sum("coma_http_requests_total"), float64(requests.Load()); got != want {
		t.Errorf("coma_http_requests_total = %v, want %v (requests issued)", got, want)
	}
	if got, want := m.Value("coma_match_exec_seconds_count"), float64(workers*iters); got != want {
		t.Errorf("coma_match_exec_seconds_count = %v, want %v (matches executed)", got, want)
	}
	if got := m.Sum("coma_analyzer_cache_hits_total"); got == 0 {
		t.Error("coma_analyzer_cache_hits_total stayed 0 across a stored-schema match workload")
	}
	if got := m.Sum("coma_prune_batches_total"); got == 0 {
		t.Error("coma_prune_batches_total stayed 0 with the candidate index enabled")
	}
}
