package coma

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/repository"
)

// ShardedRepository is the scale-out form of Repository: schemas,
// mappings and cubes are distributed over N independent shard logs
// (hash of the schema name), and every shard carries its own match
// Engine — its own per-schema analysis cache — so shards analyze,
// cache and serve independently. MatchIncoming fans the batch match
// scheduler out across shards under one shared worker budget and
// merges the per-shard rankings.
//
// A ShardedRepository with one shard behaves exactly like a Repository
// driven by a single Engine; golden tests pin the outputs bit-identical
// across shard counts.
type ShardedRepository struct {
	*repository.Sharded
	engines []*Engine
	// lastPrune records the most recent pruned fan-out's merged
	// statistics (see LastPruneStats).
	lastPrune atomic.Pointer[PruneStats]
	// pruneTotals accumulates every pruned fan-out's statistics — the
	// monotonic counters behind PruneTotals and the served metrics.
	pruneTotals core.PruneCounters
	// storage aggregates every shard's durability instruments (one
	// StorageMetrics shared across shard logs).
	storage *repository.StorageMetrics
	// warm holds the startup warm-restore outcome (see WarmStart).
	warm atomic.Pointer[WarmStats]
}

// OpenShardedRepository opens (creating if necessary) an n-shard
// repository rooted at dir. The opts configure every shard's engine
// identically (matchers, strategy, worker bound); each shard still
// owns a separate analysis cache.
func OpenShardedRepository(dir string, shards int, opts ...Option) (*ShardedRepository, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	storage := repository.NewStorageMetrics()
	ropts := []repository.OpenOption{
		repository.WithSyncPolicy(o.syncPolicy),
		repository.WithMetrics(storage),
	}
	if o.pageCache > 0 {
		ropts = append(ropts, repository.WithPageCache(o.pageCache))
	}
	store, err := repository.OpenSharded(dir, shards, ropts...)
	if err != nil {
		return nil, fmt.Errorf("coma: open sharded repository %s: %w", dir, err)
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		if engines[i], err = NewEngine(opts...); err != nil {
			store.Close()
			return nil, err
		}
	}
	// The auxiliary sources (dictionary, type table, taxonomy) are
	// read-only shared vocabulary: point every shard at the first
	// engine's instances — built from the same opts, so same content —
	// which lets the batch fan-out analyze an incoming schema once for
	// all shards. The analysis caches (one Analyzer per engine) stay
	// per shard.
	lead := engines[0].o.ctx
	for _, e := range engines[1:] {
		e.o.ctx.Dict = lead.Dict
		e.o.ctx.Types = lead.Types
		e.o.ctx.Taxonomy = lead.Taxonomy
	}
	r := &ShardedRepository{Sharded: store, engines: engines, storage: storage}
	// With the engines sharing sources, the warm sidecar (if any) can
	// seed their caches: restored analyses and columns make the first
	// post-restart matches hit instead of re-analyzing the store.
	r.restoreWarmAtOpen()
	return r, nil
}

// ShardEngine returns the i-th shard's engine, e.g. to front-load
// analysis (Engine.Analyze) of schemas known to live in that shard.
func (r *ShardedRepository) ShardEngine(i int) *Engine { return r.engines[i] }

// InvalidateAnalyses drops every shard engine's cached analyses — the
// blunt consistency hammer after bulk schema mutation.
func (r *ShardedRepository) InvalidateAnalyses() {
	for _, e := range r.engines {
		e.Invalidate(nil)
	}
}

// invalidateInstance drops one schema instance's cached analysis from
// every shard engine. A schema's index can live outside its own
// shard's cache: MatchIncoming analyzes the incoming schema through
// the fan-out's first shard, whichever shard stores it.
func (r *ShardedRepository) invalidateInstance(s *Schema) {
	for _, e := range r.engines {
		e.Invalidate(s)
	}
}

// pinInstance marks one stored schema instance as retained in every
// shard engine — for the same reason invalidateInstance spans all
// engines: the instance's analysis may be cached outside its owning
// shard when it travels as the incoming side of a fan-out.
func (r *ShardedRepository) pinInstance(s *Schema) {
	for _, e := range r.engines {
		e.Pin(s)
	}
}

// releaseInstance undoes pinInstance on every shard engine.
func (r *ShardedRepository) releaseInstance(s *Schema) {
	for _, e := range r.engines {
		e.Release(s)
	}
}

// indexInstance adds one stored schema to its owning shard engine's
// candidate index segment. Unlike analyses, a candidate's postings are
// only ever consulted through its own shard (the fan-out hands each
// shard engine its own candidates), so one segment suffices.
func (r *ShardedRepository) indexInstance(s *Schema) {
	r.engines[r.ShardFor(s.Name)].indexStored(s)
}

// unindexInstance removes one schema instance from every shard
// engine's segment; removal is a no-op on segments that never held it.
func (r *ShardedRepository) unindexInstance(s *Schema) {
	for _, e := range r.engines {
		e.unindexStored(s)
	}
}

// MatchIncoming matches an incoming schema against every schema stored
// in any shard — the sharded form of Repository.MatchIncoming, and the
// network server's core operation. Each shard's candidates are
// analyzed and matched through that shard's engine (per-shard analysis
// caches stay warm across calls), all pairs share one worker budget,
// and the per-shard rankings are merged by descending combined schema
// similarity (name breaking ties). With TopK(n), each shard prunes to
// its n best before the merged ranking is cut to n again — the global
// shortlist is always a subset of the per-shard ones, so results are
// bit-identical to the single-store path.
func (r *ShardedRepository) MatchIncoming(incoming *Schema, opts ...MatchAllOption) ([]IncomingMatch, error) {
	out, _, err := r.MatchIncomingContext(context.Background(), incoming, opts...)
	return out, err
}

// MatchIncomingContext is MatchIncoming under a request context, with
// graceful degradation: a done ctx stops the fan-out cooperatively and
// returns the cancellation cause, while — with AllowPartial — a shard
// that fails on its own is dropped from the merged ranking and
// reported in the returned ShardErrors (ordered by shard index)
// instead of failing the request. Without AllowPartial the ShardErrors
// are always nil and any shard failure fails the whole match. A
// never-canceled ctx without failures yields results bit-identical to
// MatchIncoming.
func (r *ShardedRepository) MatchIncomingContext(ctx context.Context, incoming *Schema, opts ...MatchAllOption) ([]IncomingMatch, []ShardError, error) {
	var o matchAllOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, nil, err
		}
	}
	// Every engine's analyzer window opens BEFORE the shard snapshots
	// (see Repository.MatchIncomingContext): a delete completing between
	// snapshot and the scheduler's own windows must still tombstone, or
	// this fan-out could re-publish the deleted schema's analysis into
	// whichever engines analyze it.
	for _, e := range r.engines {
		end := e.o.ctx.BeginAnalysis()
		defer end()
	}
	shards := make([]core.Shard, len(r.engines))
	for i, e := range r.engines {
		stored := r.ShardSchemas(i)
		candidates := stored[:0:0]
		for _, s := range stored {
			if s.Name != incoming.Name {
				candidates = append(candidates, s)
			}
		}
		shards[i] = core.Shard{Ctx: e.o.ctx, Candidates: candidates}
	}
	leadEngine := r.engines[0]
	lead := leadEngine.o
	cfg := core.Config{
		Matchers: lead.matchers,
		Strategy: lead.strategy,
		Feedback: lead.feedback,
		Workers:  lead.workers,
	}
	bopt := core.BatchOptions{TopK: o.topK, KeepCubes: o.keepCubes, AllowPartial: o.allowPartial}
	var results [][]*Result
	var shardErrs []ShardError
	var err error
	if spec := leadEngine.pruneSpec(&o); spec != nil {
		// Pruned fan-out: every shard engine owns an index segment over
		// its own candidates (built and maintained through that engine's
		// analysis cache, exactly like the full pipeline's per-shard
		// analyses), while the probe is built once from the lead engine's
		// analysis of the incoming schema — the shards share the lead's
		// auxiliary sources, so one probe serves every segment.
		bshards := make([]core.BoundedShard, len(shards))
		boundsByShard := make([][]float64, len(shards))
		probe := candidates.NewProbe(spec, lead.ctx.Index(incoming))
		for i, e := range r.engines {
			idx := e.o.candIdx
			for _, s := range idx.Stale(shards[i].Candidates, e.o.ctx.Sources()) {
				if ctx != nil && ctx.Err() != nil {
					return nil, nil, context.Cause(ctx)
				}
				idx.Add(s, e.o.ctx.Index(s))
			}
			boundsByShard[i] = idx.Bounds(probe, shards[i].Candidates)
		}
		// MaxCandidates cuts globally across the segments: the merged
		// ranking is what the cap is about, not any one shard's.
		limitBounds(boundsByShard, o.maxCandidates)
		for i := range shards {
			bshards[i] = core.BoundedShard{Shard: shards[i], Bounds: boundsByShard[i]}
		}
		var stats core.PruneStats
		results, stats, shardErrs, err = core.MatchShardedPruned(ctx, incoming, bshards, cfg, bopt)
		if err == nil {
			r.lastPrune.Store(&stats)
			r.pruneTotals.Record(stats)
		}
	} else {
		results, shardErrs, err = core.MatchSharded(ctx, incoming, shards, cfg, bopt)
	}
	if err != nil {
		return nil, nil, err
	}
	var out []IncomingMatch
	for si, shardResults := range results {
		for ci, res := range shardResults {
			if res != nil {
				out = append(out, IncomingMatch{Schema: shards[si].Candidates[ci], Result: res})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Result.SchemaSim != out[j].Result.SchemaSim {
			return out[i].Result.SchemaSim > out[j].Result.SchemaSim
		}
		return out[i].Schema.Name < out[j].Schema.Name
	})
	if o.topK > 0 && len(out) > o.topK {
		out = out[:o.topK]
	}
	return out, shardErrs, nil
}
