package coma_test

import (
	"sync"
	"testing"

	coma "repro"
	"repro/internal/workload"
)

// TestMatchAllConcurrentWithInvalidate runs Engine.MatchAll batches
// concurrently with Engine.Invalidate and Engine.Analyze churn on the
// same (overlapping) schemas. Run with -race it proves the analyzer
// cache and the batch's pooled arenas stay safe while analyses are
// dropped and rebuilt underneath running batches, and it checks that
// every batch still returns the sequential baseline bit for bit — an
// invalidation may cost a rebuild, never a different score.
func TestMatchAllConcurrentWithInvalidate(t *testing.T) {
	all := workload.Candidates(5)
	incoming, cands := all[0], all[1:]

	base, err := coma.NewEngine(coma.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.MatchAll(incoming, cands)
	if err != nil {
		t.Fatal(err)
	}

	engine, err := coma.NewEngine(coma.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	const (
		matchers = 3
		rounds   = 5
	)
	var mwg sync.WaitGroup
	errs := make(chan error, matchers)
	for g := 0; g < matchers; g++ {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			for r := 0; r < rounds; r++ {
				got, err := engine.MatchAll(incoming, cands)
				if err != nil {
					errs <- err
					return
				}
				for i, res := range got {
					bc, rc := want[i].Mapping.Correspondences(), res.Mapping.Correspondences()
					if res.SchemaSim != want[i].SchemaSim || len(bc) != len(rc) {
						errs <- errMismatch(cands[i].Name)
						return
					}
					for k := range bc {
						if bc[k] != rc[k] {
							errs <- errMismatch(cands[i].Name)
							return
						}
					}
				}
			}
		}()
	}

	// Churn goroutine: invalidate and re-analyze the schemas the
	// batches are matching right now — individual candidates, the
	// shared incoming schema, and periodically the whole cache — until
	// every matcher goroutine has finished its rounds.
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				engine.Invalidate(cands[i%len(cands)])
			case 1:
				engine.Analyze(cands[(i+1)%len(cands)])
			case 2:
				engine.Invalidate(incoming)
			case 3:
				engine.Invalidate(nil) // drop everything
			}
		}
	}()

	mwg.Wait()
	close(stop)
	cwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch string

func (e errMismatch) Error() string {
	return "concurrent MatchAll diverged from sequential baseline on " + string(e)
}
