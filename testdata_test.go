package coma_test

import (
	"os"
	"path/filepath"
	"testing"

	coma "repro"
)

// TestShippedSchemaFiles guards the XSD exports of the workload schemas
// under testdata/schemas: they must import cleanly and be matchable
// with the default operation (they double as CLI demo inputs).
func TestShippedSchemaFiles(t *testing.T) {
	names := []string{"cidx", "excel", "noris", "paragon", "apertum"}
	schemas := make([]*coma.Schema, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join("testdata", "schemas", n+".xsd"))
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		s, err := coma.LoadXSD(n, data)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(s.Paths()) < 40 {
			t.Errorf("%s: only %d paths", n, len(s.Paths()))
		}
		schemas = append(schemas, s)
	}
	res, err := coma.Match(schemas[0], schemas[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Len() < 20 {
		t.Errorf("cidx<->excel from files: only %d correspondences", res.Mapping.Len())
	}
}
