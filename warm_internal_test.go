package coma

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/importer"
	"repro/internal/repository"
)

// nosyncFS passes everything to the real filesystem but swallows
// fsyncs. The crash sweep simulates faults in-process — durability
// against power loss is not what it asserts, only the old-or-new byte
// contract — so the per-offset fsync cost buys nothing.
type nosyncFS struct{ repository.FS }

func (fs nosyncFS) OpenFile(name string, flag int, perm os.FileMode) (repository.File, error) {
	f, err := fs.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return nosyncFile{f}, nil
}
func (nosyncFS) SyncDir(string) error { return nil }

type nosyncFile struct{ repository.File }

func (nosyncFile) Sync() error { return nil }

// warmSweepFixture builds the crash-sweep scene: a small repository
// with a warmed engine, plus two valid sidecar generations — oldData
// (written before any analysis: header only) and newData (the full
// warmth) — so a swept write of newData over oldData has two distinct
// legal survivors.
func warmSweepFixture(t *testing.T) (repo *Repository, engine *Engine, path string, oldData, newData []byte) {
	t.Helper()
	dir := t.TempDir()
	repo, err := OpenRepository(filepath.Join(dir, "store.repo"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	engine, err = NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	// Tiny hand-built schemas keep the sidecar a few KB, so sweeping a
	// fault through every byte offset stays fast; the workload schemas'
	// analysis artifacts would blow the file up to ~40KB.
	mk := func(name, src string) *Schema {
		s, err := importer.ParseAs(name, "sql", []byte(src))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	incoming := mk("WarmProbe", "CREATE TABLE P.Probe (orderNo INT, customerName VARCHAR(100));")
	stored := []*Schema{
		mk("WarmA", "CREATE TABLE A.T (orderNo INT, customer VARCHAR(100));"),
		mk("WarmB", "CREATE TABLE B.T (invoiceNo INT, city VARCHAR(50));"),
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	path = filepath.Join(dir, "case.warm")
	if err := writeWarm(nil, path, repo.Repo, []*Engine{engine}); err != nil {
		t.Fatal(err)
	}
	if oldData, err = os.ReadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.MatchIncoming(engine, incoming); err != nil {
		t.Fatal(err)
	}
	if err := writeWarm(nil, path, repo.Repo, []*Engine{engine}); err != nil {
		t.Fatal(err)
	}
	if newData, err = os.ReadFile(path); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(oldData, newData) {
		t.Fatal("fixture degenerate: empty and warmed sidecars are identical")
	}
	// The sweep asserts "failed write leaves exactly old or new bytes",
	// which needs the encoding to be deterministic across calls.
	if err := writeWarm(nil, path, repo.Repo, []*Engine{engine}); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, newData) {
		t.Fatal("sidecar encoding is not deterministic")
	}
	return repo, engine, path, oldData, newData
}

// restoreInto runs a warm restore of path into a throwaway engine.
func restoreInto(t *testing.T, repo *Repository, path string) WarmStats {
	t.Helper()
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return restoreWarm(path, repo.Repo, []*Engine{e}, func(string) int { return 0 })
}

// TestWarmSidecarCrashSweep injects a write fault at every byte offset
// of the sidecar rewrite — outright failure and torn short write — and
// asserts the crash-ordered protocol's contract: the file afterwards
// is bit-exactly the old sidecar or the new one, never a mixture, and
// whichever survived passes a warm restore's validation.
func TestWarmSidecarCrashSweep(t *testing.T) {
	repo, engine, path, oldData, newData := warmSweepFixture(t)
	engines := []*Engine{engine}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for _, kind := range []repository.FaultKind{repository.FaultFail, repository.FaultShortWrite} {
		for off := 0; off <= len(newData); off += stride {
			if err := os.WriteFile(path, oldData, 0o644); err != nil {
				t.Fatal(err)
			}
			ffs := repository.NewFaultFS(nosyncFS{repository.OSFS})
			ffs.Arm(kind, int64(off))
			err := writeWarm(ffs, path, repo.Repo, engines)
			cur, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("fault %d@%d: sidecar unreadable: %v", kind, off, rerr)
			}
			if err == nil {
				if !bytes.Equal(cur, newData) {
					t.Fatalf("fault %d@%d: successful write left %d bytes, not the new sidecar", kind, off, len(cur))
				}
			} else if !bytes.Equal(cur, oldData) && !bytes.Equal(cur, newData) {
				t.Fatalf("fault %d@%d: failed write left a torn sidecar (%d bytes)", kind, off, len(cur))
			}
			if ws := restoreInto(t, repo, path); !ws.Attempted || !ws.Used {
				t.Fatalf("fault %d@%d: surviving sidecar failed validation: %+v", kind, off, ws)
			}
		}
	}
}

// TestWarmSidecarBitFlipSweep flips every single byte of a valid
// sidecar and asserts the restore rejects each damaged file outright —
// warm artifacts are discarded, never trusted: magic flips fail the
// magic check, CRC-field and body flips fail the body CRC (CRC32
// catches all single-byte errors), and nothing is seeded.
func TestWarmSidecarBitFlipSweep(t *testing.T) {
	repo, _, path, _, newData := warmSweepFixture(t)
	if ws := restoreInto(t, repo, path); !ws.Used || ws.Restored == 0 {
		t.Fatalf("pristine sidecar did not restore: %+v", ws)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	cur := make([]byte, len(newData))
	for x := 0; x < len(newData); x += stride {
		copy(cur, newData)
		cur[x] ^= 0xFF
		if err := os.WriteFile(path, cur, 0o644); err != nil {
			t.Fatal(err)
		}
		ws := restoreInto(t, repo, path)
		if !ws.Attempted {
			t.Fatalf("flip@%d: sidecar not read", x)
		}
		if ws.Used || ws.Restored != 0 {
			t.Fatalf("flip@%d: damaged sidecar trusted: %+v", x, ws)
		}
	}
}
