package coma

import (
	"net/http"
	"testing"
	"time"
)

// respWithRetryAfter builds a bare response carrying one Retry-After
// header value.
func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{Header: h}
}

// TestClientRetryAfter: the backoff hint honors both RFC 9110 forms —
// delta-seconds and HTTP-date — capped at the client's retryMax, and
// degrades to zero (plain backoff) on absent, past, or garbage values.
func TestClientRetryAfter(t *testing.T) {
	c := NewClient("http://example.invalid", WithRetryBackoff(10*time.Millisecond, 3*time.Second))
	now := time.Now()
	cases := []struct {
		name  string
		value string
		min   time.Duration
		max   time.Duration
	}{
		{"delta seconds", "2", 2 * time.Second, 2 * time.Second},
		{"delta capped at retryMax", "120", 3 * time.Second, 3 * time.Second},
		{"zero delta", "0", 0, 0},
		{"negative delta", "-3", 0, 0},
		// An HTTP-date hint is measured against the wall clock, so allow
		// the parse-to-check drift plus the header's 1s resolution.
		{"http date", now.Add(2 * time.Second).UTC().Format(http.TimeFormat), 900 * time.Millisecond, 2 * time.Second},
		{"http date capped at retryMax", now.Add(time.Hour).UTC().Format(http.TimeFormat), 3 * time.Second, 3 * time.Second},
		{"http date in the past", now.Add(-time.Hour).UTC().Format(http.TimeFormat), 0, 0},
		{"garbage", "soon", 0, 0},
		{"absent", "", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.retryAfter(respWithRetryAfter(tc.value))
			if got < tc.min || got > tc.max {
				t.Errorf("retryAfter(%q) = %v, want in [%v, %v]", tc.value, got, tc.min, tc.max)
			}
		})
	}
	if got := c.retryAfter(nil); got != 0 {
		t.Errorf("retryAfter(nil) = %v, want 0", got)
	}
}
