package coma_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	coma "repro"
	"repro/internal/workload"
)

const clientPO1DDL = `
CREATE TABLE PO1.ShipTo (
  poNo INT,
  custNo INT REFERENCES PO1.Customer,
  shipToStreet VARCHAR(200),
  shipToCity VARCHAR(200),
  shipToZip VARCHAR(20),
  PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
  custNo INT,
  custName VARCHAR(200),
  custStreet VARCHAR(200),
  custCity VARCHAR(200),
  custZip VARCHAR(20),
  PRIMARY KEY (custNo)
);`

const clientPO2XSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2">
  <xsd:sequence>
   <xsd:element name="DeliverTo" type="Address"/>
   <xsd:element name="BillTo" type="Address"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="Address">
  <xsd:sequence>
   <xsd:element name="Street" type="xsd:string"/>
   <xsd:element name="City" type="xsd:string"/>
   <xsd:element name="Zip" type="xsd:decimal"/>
  </xsd:sequence>
 </xsd:complexType>
</xsd:schema>`

// startShardedServer serves an n-shard repository over httptest and
// returns a client on it.
func startShardedServer(t *testing.T, n int, opts ...coma.Option) (*coma.Client, *coma.ShardedRepository) {
	t.Helper()
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), "served"), n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	ts := httptest.NewServer(repo.Handler())
	t.Cleanup(ts.Close)
	return coma.NewClient(ts.URL), repo
}

// TestClientEndToEndMatchEqualsLocal is the PR's acceptance test: a
// match requested over HTTP — import PO2 into the served repository,
// post PO1 inline — returns exactly the mapping and schema similarity
// a local Engine.Match computes on the same pair.
func TestClientEndToEndMatchEqualsLocal(t *testing.T) {
	ctx := context.Background()
	client, _ := startShardedServer(t, 4)

	if _, err := client.PutSchema(ctx, "PO2", "xsd", clientPO2XSD); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Match(ctx, coma.MatchRequest{
		Schema: coma.SchemaPayload{Name: "PO1", Format: "sql", Source: clientPO1DDL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Incoming != "PO1" || len(resp.Candidates) != 1 {
		t.Fatalf("response: incoming %q, %d candidates", resp.Incoming, len(resp.Candidates))
	}

	// The local reference on the very same pair.
	s1, err := coma.LoadSQL("PO1", clientPO1DDL)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := coma.LoadXSD("PO2", []byte(clientPO2XSD))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}

	got := resp.Candidates[0]
	if got.Schema != "PO2" {
		t.Fatalf("candidate %q, want PO2", got.Schema)
	}
	if got.SchemaSim != want.SchemaSim {
		t.Errorf("schema sim over HTTP %v, local %v", got.SchemaSim, want.SchemaSim)
	}
	wantCorrs := want.Mapping.Correspondences()
	if len(got.Correspondences) != len(wantCorrs) {
		t.Fatalf("%d correspondences over HTTP, local %d", len(got.Correspondences), len(wantCorrs))
	}
	for i, c := range got.Correspondences {
		w := wantCorrs[i]
		if c.From != w.From || c.To != w.To || c.Sim != w.Sim {
			t.Errorf("correspondence %d = %+v, want %+v", i, c, w)
		}
	}
}

// TestClientSchemaRoundTrip drives the full client surface against a
// live server: health, file import, graph import, listing, detail,
// stored-name match, delete.
func TestClientSchemaRoundTrip(t *testing.T) {
	ctx := context.Background()
	client, _ := startShardedServer(t, 2)

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 2 || h.Schemas != 0 {
		t.Errorf("health = %+v", h)
	}

	// Import from a file (extension dispatch), from source, and from an
	// in-memory graph.
	sqlPath := filepath.Join(t.TempDir(), "Orders.sql")
	if err := os.WriteFile(sqlPath, []byte(clientPO1DDL), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := client.PutSchemaFile(ctx, sqlPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "Orders" || info.Paths == 0 {
		t.Errorf("PutSchemaFile = %+v", info)
	}
	if _, err := client.PutSchema(ctx, "PO2", "xsd", clientPO2XSD); err != nil {
		t.Fatal(err)
	}
	graph := workload.Schemas()[0]
	ginfo, err := client.PutSchemaGraph(ctx, graph)
	if err != nil {
		t.Fatal(err)
	}
	// The wire XSD round-trip is equivalence, not identity: the stored
	// graph equals a local export→import of the same schema.
	var wire bytes.Buffer
	if err := coma.WriteSchemaXSD(&wire, graph); err != nil {
		t.Fatal(err)
	}
	rt, err := coma.LoadXSD(graph.Name, wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ginfo.Name != graph.Name || ginfo.Paths != len(rt.Paths()) {
		t.Errorf("PutSchemaGraph = %+v, want %d paths (XSD wire round-trip)", ginfo, len(rt.Paths()))
	}

	schemas, err := client.Schemas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 3 {
		t.Fatalf("%d schemas stored", len(schemas))
	}
	detail, err := client.Schema(ctx, "Orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(detail.Paths) != info.Paths {
		t.Errorf("detail paths %d, want %d", len(detail.Paths), info.Paths)
	}

	resp, err := client.MatchStored(ctx, "Orders", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 {
		t.Fatalf("MatchStored topK 1: %d candidates", len(resp.Candidates))
	}

	if err := client.DeleteSchema(ctx, "Orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Schema(ctx, "Orders"); err == nil {
		t.Error("deleted schema still served")
	}
	if err := client.DeleteSchema(ctx, "Orders"); err == nil {
		t.Error("double delete succeeded")
	}
}

// TestClientMatchGraphMatchesLocalBatch: MatchGraph against a server
// holding the workload candidates equals the local sharded
// MatchIncoming on the same store.
func TestClientMatchGraphMatchesLocalBatch(t *testing.T) {
	ctx := context.Background()
	client, repo := startShardedServer(t, 4)
	stored := workload.Candidates(7)[1:]
	for _, s := range stored {
		if _, err := client.PutSchemaGraph(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	incoming := workload.Candidates(1)[0]
	resp, err := client.MatchGraph(ctx, incoming, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != len(stored) {
		t.Fatalf("%d candidates over HTTP, want %d", len(resp.Candidates), len(stored))
	}

	// Local reference: both sides of the HTTP match went through the
	// XSD wire round-trip — the stored candidates when imported, the
	// incoming schema when posted (leaf types normalize to XSD
	// builtins). MatchIncoming over the same repository supplies the
	// stored versions; round-trip the incoming schema the same way.
	var buf bytes.Buffer
	if err := coma.WriteSchemaXSD(&buf, incoming); err != nil {
		t.Fatal(err)
	}
	wireIncoming, err := coma.LoadXSD(incoming.Name, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	local, err := repo.MatchIncoming(wireIncoming)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != len(resp.Candidates) {
		t.Fatalf("local %d matches, HTTP %d", len(local), len(resp.Candidates))
	}
	for i, c := range resp.Candidates {
		if c.Schema != local[i].Schema.Name || c.SchemaSim != local[i].Result.SchemaSim {
			t.Errorf("rank %d: HTTP (%s, %v), local (%s, %v)",
				i, c.Schema, c.SchemaSim, local[i].Schema.Name, local[i].Result.SchemaSim)
		}
	}
}
