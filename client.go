package coma

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/server"
)

// Wire types of the comaserve HTTP/JSON API, shared verbatim between
// the server and this client.
type (
	// SchemaPayload names a schema over the wire: a stored schema by
	// name, or an inline schema with format and source text.
	SchemaPayload = server.SchemaPayload
	// MatchRequest is the body of POST /match.
	MatchRequest = server.MatchRequest
	// MatchResponse answers POST /match: candidates ranked by combined
	// schema similarity.
	MatchResponse = server.MatchResponse
	// MatchCandidate is one ranked outcome of a match request.
	MatchCandidate = server.MatchCandidate
	// SchemaInfo summarizes one stored schema.
	SchemaInfo = server.SchemaInfo
	// SchemaDetail is a stored schema's path enumeration.
	SchemaDetail = server.SchemaDetail
	// ServerHealth answers GET /healthz.
	ServerHealth = server.Health
	// ServerReadiness answers GET /readyz.
	ServerReadiness = server.Readiness
	// ShardFailure reports one shard dropped from a partial match
	// response (MatchResponse.FailedShards).
	ShardFailure = server.ShardFailure
)

// Client is a thin client for a comaserve instance: schema import,
// listing and the repository-scale batch match, over plain HTTP/JSON.
// The zero value is not usable; construct with NewClient. Methods are
// safe for concurrent use.
type Client struct {
	base string
	// HTTPClient performs the requests; NewClient installs
	// http.DefaultClient. Replace it before first use for custom
	// timeouts or transports.
	HTTPClient *http.Client
	// retries is the attempt bound (1 = no retries); retryBase and
	// retryMax shape the jittered exponential backoff between attempts.
	retries   int
	retryBase time.Duration
	retryMax  time.Duration
}

// ClientOption adjusts a Client at construction.
type ClientOption func(*Client)

// WithRetry makes the client retry transient failures — transport
// errors, 429, 502, 503 and 504 — up to attempts tries total, with
// jittered exponential backoff (honoring Retry-After when the server
// sends one, as comaserve's load shedding does). GET, PUT and DELETE
// retry as-is (their server operations are idempotent); POST /match is
// retried only because each retry carries the same generated
// Idempotency-Key header — the match itself mutates nothing, and the
// key lets any deduplicating intermediary (or a future server-side
// dedup cache) recognize the retry. attempts < 2 leaves retries off.
func WithRetry(attempts int) ClientOption {
	return func(c *Client) {
		if attempts < 1 {
			attempts = 1
		}
		c.retries = attempts
	}
}

// WithRetryBackoff adjusts the retry backoff shape: base is the first
// delay (doubled per attempt, jittered over its upper half), max caps
// it. Non-positive values keep the defaults (100ms, 2s).
func WithRetryBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) {
		if base > 0 {
			c.retryBase = base
		}
		if max > 0 {
			c.retryMax = max
		}
	}
}

// NewClient returns a client for the comaserve instance at baseURL
// (e.g. "http://localhost:8402").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		HTTPClient: http.DefaultClient,
		retries:    1,
		retryBase:  100 * time.Millisecond,
		retryMax:   2 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// retryableStatus reports whether a response status signals a
// transient condition worth retrying.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryDelay computes the jittered backoff before retry attempt n
// (1-based): exponential from retryBase, capped at retryMax, jittered
// over the upper half so synchronized clients spread out, and floored
// by a server-provided Retry-After hint.
func (c *Client) retryDelay(attempt int, hint time.Duration) time.Duration {
	d := c.retryBase
	for i := 1; i < attempt && d < c.retryMax; i++ {
		d *= 2
	}
	if d > c.retryMax {
		d = c.retryMax
	}
	if half := int64(d / 2); half > 0 {
		d = d/2 + time.Duration(rand.Int64N(half+1))
	}
	if hint > d {
		d = hint
	}
	return d
}

// newIdempotencyKey returns a fresh random key marking every attempt
// of one logical POST as the same operation.
func newIdempotencyKey() string {
	var b [16]byte
	crand.Read(b[:]) // never fails per crypto/rand contract
	return hex.EncodeToString(b[:])
}

// retryAfter parses a Retry-After header in either RFC 9110 form —
// delta-seconds ("3") or HTTP-date ("Tue, 29 Jul 2025 09:00:00 GMT",
// or the obsolete RFC 850 and asctime shapes http.ParseTime accepts) —
// returning 0 when absent or unparseable. comaserve emits
// delta-seconds; proxies and other servers in front of it may rewrite
// to the date form, which was previously ignored and silently fell
// back to generic backoff. Either form is capped at the client's
// retryMax so a miszoned clock (or hostile header) cannot park the
// client for hours.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(h); err == nil {
		d = time.Until(when)
		if d <= 0 {
			return 0
		}
	} else {
		return 0
	}
	if d > c.retryMax {
		d = c.retryMax
	}
	return d
}

// do performs one JSON round-trip: method + path with an optional
// request body, decoding a 2xx response into out (when non-nil) and
// any other status into an error carrying the server's message. With
// WithRetry, transient failures are retried with jittered backoff; the
// request is rebuilt per attempt, and a POST carries one
// Idempotency-Key across all its attempts.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return fmt.Errorf("coma: client: encode %s %s: %w", method, path, err)
		}
	}
	attempts := c.retries
	if attempts < 1 {
		attempts = 1
	}
	idemKey := ""
	if method == http.MethodPost && attempts > 1 {
		idemKey = newIdempotencyKey()
	}
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(c.retryDelay(attempt, hint))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("coma: client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
			}
			t.Stop()
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("coma: client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := c.HTTPClient.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("coma: client: %s %s: %w", method, path, err)
			if ctx.Err() != nil {
				// The request died with its context — retrying cannot
				// succeed and would only mask the cancellation.
				return lastErr
			}
			hint = 0
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			var apiErr server.ErrorResponse
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&apiErr) == nil && apiErr.Error != "" {
				lastErr = fmt.Errorf("coma: client: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
			} else {
				lastErr = fmt.Errorf("coma: client: %s %s: HTTP %d", method, path, resp.StatusCode)
			}
			hint = c.retryAfter(resp)
			resp.Body.Close()
			if retryableStatus(resp.StatusCode) {
				continue
			}
			return lastErr
		}
		if out == nil {
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("coma: client: decode %s %s response: %w", method, path, err)
		}
		return nil
	}
	return lastErr
}

// Health checks the server's liveness and reports store size and shard
// count.
func (c *Client) Health(ctx context.Context) (ServerHealth, error) {
	var h ServerHealth
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Ready checks the server's readiness: whether it should receive new
// traffic, with the admission queue's state. While the server drains
// (graceful shutdown) the endpoint answers 503; Ready then returns the
// decoded state alongside a non-nil error, so probes can report queue
// depth while refusing traffic. Readiness is a point-in-time probe and
// is never retried, regardless of WithRetry.
func (c *Client) Ready(ctx context.Context) (ServerReadiness, error) {
	var ready ServerReadiness
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return ready, fmt.Errorf("coma: client: %w", err)
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return ready, fmt.Errorf("coma: client: GET /readyz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return ready, fmt.Errorf("coma: client: GET /readyz: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		return ready, fmt.Errorf("coma: client: decode GET /readyz response: %w", err)
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return ready, fmt.Errorf("coma: client: server not ready (%s)", ready.Status)
	}
	return ready, nil
}

// Schemas lists the stored schemas.
func (c *Client) Schemas(ctx context.Context) ([]SchemaInfo, error) {
	var resp server.SchemasResponse
	if err := c.do(ctx, http.MethodGet, "/schemas", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Schemas, nil
}

// Schema fetches one stored schema's path enumeration.
func (c *Client) Schema(ctx context.Context, name string) (SchemaDetail, error) {
	var d SchemaDetail
	err := c.do(ctx, http.MethodGet, "/schemas/"+url.PathEscape(name), nil, &d)
	return d, err
}

// PutSchema imports a schema document into the server's repository
// under the given name; format dispatches the importer like a file
// extension (sql, ddl, xsd, xml, json, dtd).
func (c *Client) PutSchema(ctx context.Context, name, format, source string) (SchemaInfo, error) {
	var info SchemaInfo
	err := c.do(ctx, http.MethodPut, "/schemas/"+url.PathEscape(name),
		SchemaPayload{Name: name, Format: format, Source: source}, &info)
	return info, err
}

// PutSchemaFile imports a schema file, naming the schema after the
// file's base name and dispatching the importer on the extension —
// the client-side twin of LoadFile.
func (c *Client) PutSchemaFile(ctx context.Context, path string) (SchemaInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SchemaInfo{}, err
	}
	ext := filepath.Ext(path)
	name := strings.TrimSuffix(filepath.Base(path), ext)
	return c.PutSchema(ctx, name, ext, string(data))
}

// PutSchemaGraph imports an in-memory schema graph, serialized over
// the wire as an XSD document. The stored graph is equivalent, not
// identical: leaves and shared fragments are preserved, inner elements
// gain a type-name path level (see WriteSchemaXSD).
func (c *Client) PutSchemaGraph(ctx context.Context, s *Schema) (SchemaInfo, error) {
	var buf bytes.Buffer
	if err := export.SchemaXSD(&buf, s); err != nil {
		return SchemaInfo{}, err
	}
	return c.PutSchema(ctx, s.Name, "xsd", buf.String())
}

// DeleteSchema removes a stored schema.
func (c *Client) DeleteSchema(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/schemas/"+url.PathEscape(name), nil, nil)
}

// Match performs one batch match request.
func (c *Client) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	var resp MatchResponse
	if err := c.do(ctx, http.MethodPost, "/match", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MatchStored matches a schema already stored on the server against
// every other stored schema; topK > 0 keeps only the K best.
func (c *Client) MatchStored(ctx context.Context, name string, topK int) (*MatchResponse, error) {
	return c.Match(ctx, MatchRequest{Schema: SchemaPayload{Name: name}, TopK: topK})
}

// MatchGraph matches an in-memory schema graph against the server's
// store, shipping it as an inline XSD document.
func (c *Client) MatchGraph(ctx context.Context, s *Schema, topK int) (*MatchResponse, error) {
	var buf bytes.Buffer
	if err := export.SchemaXSD(&buf, s); err != nil {
		return nil, err
	}
	return c.Match(ctx, MatchRequest{
		Schema: SchemaPayload{Name: s.Name, Format: "xsd", Source: buf.String()},
		TopK:   topK,
	})
}
