package coma

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/export"
	"repro/internal/server"
)

// Wire types of the comaserve HTTP/JSON API, shared verbatim between
// the server and this client.
type (
	// SchemaPayload names a schema over the wire: a stored schema by
	// name, or an inline schema with format and source text.
	SchemaPayload = server.SchemaPayload
	// MatchRequest is the body of POST /match.
	MatchRequest = server.MatchRequest
	// MatchResponse answers POST /match: candidates ranked by combined
	// schema similarity.
	MatchResponse = server.MatchResponse
	// MatchCandidate is one ranked outcome of a match request.
	MatchCandidate = server.MatchCandidate
	// SchemaInfo summarizes one stored schema.
	SchemaInfo = server.SchemaInfo
	// SchemaDetail is a stored schema's path enumeration.
	SchemaDetail = server.SchemaDetail
	// ServerHealth answers GET /healthz.
	ServerHealth = server.Health
)

// Client is a thin client for a comaserve instance: schema import,
// listing and the repository-scale batch match, over plain HTTP/JSON.
// The zero value is not usable; construct with NewClient. Methods are
// safe for concurrent use.
type Client struct {
	base string
	// HTTPClient performs the requests; NewClient installs
	// http.DefaultClient. Replace it before first use for custom
	// timeouts or transports.
	HTTPClient *http.Client
}

// NewClient returns a client for the comaserve instance at baseURL
// (e.g. "http://localhost:8402").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), HTTPClient: http.DefaultClient}
}

// do performs one JSON round-trip: method + path with an optional
// request body, decoding a 2xx response into out (when non-nil) and
// any other status into an error carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("coma: client: encode %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("coma: client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("coma: client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr server.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("coma: client: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("coma: client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("coma: client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Health checks the server's liveness and reports store size and shard
// count.
func (c *Client) Health(ctx context.Context) (ServerHealth, error) {
	var h ServerHealth
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Schemas lists the stored schemas.
func (c *Client) Schemas(ctx context.Context) ([]SchemaInfo, error) {
	var resp server.SchemasResponse
	if err := c.do(ctx, http.MethodGet, "/schemas", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Schemas, nil
}

// Schema fetches one stored schema's path enumeration.
func (c *Client) Schema(ctx context.Context, name string) (SchemaDetail, error) {
	var d SchemaDetail
	err := c.do(ctx, http.MethodGet, "/schemas/"+url.PathEscape(name), nil, &d)
	return d, err
}

// PutSchema imports a schema document into the server's repository
// under the given name; format dispatches the importer like a file
// extension (sql, ddl, xsd, xml, json, dtd).
func (c *Client) PutSchema(ctx context.Context, name, format, source string) (SchemaInfo, error) {
	var info SchemaInfo
	err := c.do(ctx, http.MethodPut, "/schemas/"+url.PathEscape(name),
		SchemaPayload{Name: name, Format: format, Source: source}, &info)
	return info, err
}

// PutSchemaFile imports a schema file, naming the schema after the
// file's base name and dispatching the importer on the extension —
// the client-side twin of LoadFile.
func (c *Client) PutSchemaFile(ctx context.Context, path string) (SchemaInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SchemaInfo{}, err
	}
	ext := filepath.Ext(path)
	name := strings.TrimSuffix(filepath.Base(path), ext)
	return c.PutSchema(ctx, name, ext, string(data))
}

// PutSchemaGraph imports an in-memory schema graph, serialized over
// the wire as an XSD document. The stored graph is equivalent, not
// identical: leaves and shared fragments are preserved, inner elements
// gain a type-name path level (see WriteSchemaXSD).
func (c *Client) PutSchemaGraph(ctx context.Context, s *Schema) (SchemaInfo, error) {
	var buf bytes.Buffer
	if err := export.SchemaXSD(&buf, s); err != nil {
		return SchemaInfo{}, err
	}
	return c.PutSchema(ctx, s.Name, "xsd", buf.String())
}

// DeleteSchema removes a stored schema.
func (c *Client) DeleteSchema(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/schemas/"+url.PathEscape(name), nil, nil)
}

// Match performs one batch match request.
func (c *Client) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	var resp MatchResponse
	if err := c.do(ctx, http.MethodPost, "/match", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MatchStored matches a schema already stored on the server against
// every other stored schema; topK > 0 keeps only the K best.
func (c *Client) MatchStored(ctx context.Context, name string, topK int) (*MatchResponse, error) {
	return c.Match(ctx, MatchRequest{Schema: SchemaPayload{Name: name}, TopK: topK})
}

// MatchGraph matches an in-memory schema graph against the server's
// store, shipping it as an inline XSD document.
func (c *Client) MatchGraph(ctx context.Context, s *Schema, topK int) (*MatchResponse, error) {
	var buf bytes.Buffer
	if err := export.SchemaXSD(&buf, s); err != nil {
		return nil, err
	}
	return c.Match(ctx, MatchRequest{
		Schema: SchemaPayload{Name: s.Name, Format: "xsd", Source: buf.String()},
		TopK:   topK,
	})
}
