package coma

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/schema"
)

// This file wires the candidate-pruning index (internal/candidates)
// into the repository match paths. With WithCandidateIndex, every
// engine maintains an inverted index over its stored schemas' analysis
// artifacts (name tokens, dictionary term ids, generic type classes);
// Repository.MatchIncoming and ShardedRepository.MatchIncoming score
// each stored candidate with a cheap admissible upper bound on its
// combined schema similarity and hand the bounds to the pruned batch
// scheduler (core.MatchShardedPruned), which skips every candidate
// whose bound cannot reach the running k-th best real score. Results
// are bit-identical to the exhaustive scan; only the amount of work
// changes. The index falls back to the exhaustive scan whenever the
// bound would not be provably admissible (custom matchers, feedback,
// non-library strategies) or no TopK is requested.

// PruneStats reports how much work candidate pruning saved in the last
// MatchIncoming batch: total candidates, pairs fully matched, pairs
// skipped (bound below the running k-th best score, or cut by
// MaxCandidates).
type PruneStats = core.PruneStats

// PruneTotals is the cumulative form of PruneStats: candidates
// considered, matched and skipped summed over every pruned batch since
// the repository opened. Unlike the last-batch snapshot it is
// monotonic under concurrent matches, so it is what /readyz and
// /metrics report.
type PruneTotals = core.PruneTotals

// CandidateIndexStats summarizes a candidate index segment: indexed
// schema count and total posting-list entries.
type CandidateIndexStats = candidates.Stats

// WithCandidateIndex equips the engine with a candidate-pruning index:
// an inverted index over the stored schemas' name tokens, dictionary
// term ids and generic type classes, maintained incrementally as the
// repository backends store and delete schemas (never rebuilt from
// scratch) and filled lazily for schemas stored before the option took
// effect. Repository.MatchIncoming and its sharded form then prune
// TopK batches through it — skipping every candidate whose upper bound
// cannot reach the running k-th best real score — with results
// bit-identical to the exhaustive scan. Matches that cannot be safely
// bounded (custom matchers, feedback, no TopK, Exhaustive) run
// exhaustively as before.
func WithCandidateIndex() Option {
	return func(o *Options) error {
		o.candIdx = candidates.NewIndex()
		return nil
	}
}

// MaxCandidates caps a pruned MatchIncoming batch at the n candidates
// with the highest upper bounds; the rest are excluded without being
// matched. Unlike plain bound pruning this is a heuristic cut — an
// excluded candidate could in principle outrank a retained one — so
// results may deviate from the exhaustive scan. It is the latency
// ceiling for very large stores; leave it unset for bit-identical
// results. Ignored when the batch runs exhaustively.
func MaxCandidates(n int) MatchAllOption {
	return func(o *matchAllOptions) error {
		if n <= 0 {
			return fmt.Errorf("coma: non-positive MaxCandidates %d", n)
		}
		o.maxCandidates = n
		return nil
	}
}

// Exhaustive forces a MatchIncoming batch to run the full pipeline on
// every candidate, bypassing the candidate-pruning index. Results are
// bit-identical either way (pruning is safe); the switch exists for
// verification, benchmarking the unpruned baseline, and batches that
// must populate per-candidate results beyond the TopK.
func Exhaustive() MatchAllOption {
	return func(o *matchAllOptions) error {
		o.exhaustive = true
		return nil
	}
}

// pruneSpec decides whether a batch with these options can be pruned
// through the engine's candidate index: the index must exist, the
// batch must want a TopK (without one there is no k-th score to prune
// against) and not demand exhaustiveness, and the engine's matcher and
// strategy configuration must be one the bound formulas provably
// dominate (candidates.NewSpec returns nil otherwise).
func (e *Engine) pruneSpec(o *matchAllOptions) *candidates.Spec {
	if e.o.candIdx == nil || o.exhaustive || o.topK <= 0 {
		return nil
	}
	return candidates.NewSpec(e.o.matchers, e.o.strategy, e.o.feedback)
}

// candidateBounds computes one admissible upper bound per candidate
// from the engine's index, opportunistically (re)indexing stale or
// not-yet-indexed candidates first — analyses come from the engine's
// cache, so a freshly indexed candidate pays nothing the full match
// would not have paid anyway.
func (e *Engine) candidateBounds(ctx context.Context, spec *candidates.Spec, incoming *Schema, cands []*Schema) ([]float64, error) {
	idx := e.o.candIdx
	mctx := e.o.ctx
	for _, s := range idx.Stale(cands, mctx.Sources()) {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		idx.Add(s, mctx.Index(s))
	}
	probe := candidates.NewProbe(spec, mctx.Index(incoming))
	return idx.Bounds(probe, cands), nil
}

// limitBounds applies MaxCandidates across shards: every bound outside
// the m highest (ties breaking toward the earlier shard, then the
// earlier candidate, so the cut is deterministic) becomes -Inf — the
// scheduler's "exclude outright" sentinel. m <= 0 means no cap.
func limitBounds(boundsByShard [][]float64, m int) {
	if m <= 0 {
		return
	}
	total := 0
	for _, bs := range boundsByShard {
		total += len(bs)
	}
	if total <= m {
		return
	}
	type ref struct {
		si, ci int
		b      float64
	}
	refs := make([]ref, 0, total)
	for si, bs := range boundsByShard {
		for ci, b := range bs {
			refs = append(refs, ref{si, ci, b})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].b != refs[b].b {
			return refs[a].b > refs[b].b
		}
		if refs[a].si != refs[b].si {
			return refs[a].si < refs[b].si
		}
		return refs[a].ci < refs[b].ci
	})
	for _, r := range refs[m:] {
		boundsByShard[r.si][r.ci] = math.Inf(-1)
	}
}

// matchCandidates runs one repository batch, pruned when the engine
// and options allow it. The returned stats are non-nil exactly when
// the pruned scheduler ran.
func (e *Engine) matchCandidates(ctx context.Context, incoming *Schema, cands []*Schema, o *matchAllOptions) ([]*Result, *PruneStats, error) {
	if spec := e.pruneSpec(o); spec != nil {
		bounds, err := e.candidateBounds(ctx, spec, incoming, cands)
		if err != nil {
			return nil, nil, err
		}
		limitBounds([][]float64{bounds}, o.maxCandidates)
		results, stats, err := core.MatchAllPruned(ctx, e.o.ctx, incoming, cands, bounds, e.config(),
			core.BatchOptions{TopK: o.topK, KeepCubes: o.keepCubes})
		if err != nil {
			return nil, nil, err
		}
		return results, &stats, nil
	}
	results, err := core.MatchAll(ctx, e.o.ctx, incoming, cands, e.config(),
		core.BatchOptions{TopK: o.topK, KeepCubes: o.keepCubes})
	return results, nil, err
}

// indexStored adds one stored schema to the engine's candidate index
// (replacing a previous entry for the same instance). No-op without
// WithCandidateIndex. The caller is expected to have pinned the schema
// — the repository backends do — so the analysis built here stays
// cached for the matches that follow.
func (e *Engine) indexStored(s *schema.Schema) {
	if e.o.candIdx != nil {
		e.o.candIdx.Add(s, e.o.ctx.Index(s))
	}
}

// unindexStored removes one schema instance from the engine's
// candidate index. No-op without WithCandidateIndex or for instances
// never indexed.
func (e *Engine) unindexStored(s *schema.Schema) {
	if e.o.candIdx != nil {
		e.o.candIdx.Remove(s)
	}
}

// CandidateIndexStats reports the engine's candidate index segment
// size; ok is false without WithCandidateIndex.
func (e *Engine) CandidateIndexStats() (st CandidateIndexStats, ok bool) {
	if e.o.candIdx == nil {
		return CandidateIndexStats{}, false
	}
	return e.o.candIdx.Stats(), true
}

// LastPruneStats returns the prune statistics of the most recent
// MatchIncoming batch that ran through the candidate-pruning index
// (zero value if none did — engine without WithCandidateIndex,
// exhaustive batches, unboundable configurations).
func (r *Repository) LastPruneStats() PruneStats {
	if ps := r.lastPrune.Load(); ps != nil {
		return *ps
	}
	return PruneStats{}
}

// LastPruneStats is Repository.LastPruneStats for the sharded store:
// the merged statistics of the most recent pruned fan-out.
func (r *ShardedRepository) LastPruneStats() PruneStats {
	if ps := r.lastPrune.Load(); ps != nil {
		return *ps
	}
	return PruneStats{}
}

// PruneTotals returns the cumulative pruning counters across every
// pruned MatchIncoming batch since the repository opened.
func (r *Repository) PruneTotals() PruneTotals { return r.pruneTotals.Totals() }

// PruneTotals returns the cumulative pruning counters across every
// pruned fan-out since the sharded repository opened.
func (r *ShardedRepository) PruneTotals() PruneTotals { return r.pruneTotals.Totals() }
