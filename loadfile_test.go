package coma_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	coma "repro"
)

// TestLoadFileDispatch is the table-driven satellite for the shared
// file loader: every supported extension dispatches to its importer
// (case-insensitively), the schema is named after the base name, and
// the error paths — unknown extension, unreadable file, empty schema —
// fail with a diagnosable message.
func TestLoadFileDispatch(t *testing.T) {
	const (
		sqlSrc = "CREATE TABLE S.T (a INT, b VARCHAR(10));"
		xsdSrc = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="Root"><xsd:sequence>
  <xsd:element name="a" type="xsd:string"/>
 </xsd:sequence></xsd:complexType>
</xsd:schema>`
		jsonSrc = `{"properties": {"a": {"type": "string"}, "b": {"type": "integer"}}}`
		dtdSrc  = `<!ELEMENT order (item)><!ELEMENT item (#PCDATA)>`
	)

	cases := []struct {
		file      string
		src       string
		wantName  string
		wantPaths int // 0 = only assert non-empty
		wantErr   string
	}{
		// Extension dispatch.
		{file: "po.sql", src: sqlSrc, wantName: "po", wantPaths: 3},
		{file: "po.ddl", src: sqlSrc, wantName: "po", wantPaths: 3},
		{file: "po.xsd", src: xsdSrc, wantName: "po", wantPaths: 1},
		{file: "po.xml", src: xsdSrc, wantName: "po", wantPaths: 1},
		{file: "po.json", src: jsonSrc, wantName: "po", wantPaths: 2},
		{file: "po.dtd", src: dtdSrc, wantName: "po"},
		// Extensions are case-insensitive; the name keeps its case and
		// drops only the extension.
		{file: "Orders.SQL", src: sqlSrc, wantName: "Orders", wantPaths: 3},
		{file: "po.v2.sql", src: sqlSrc, wantName: "po.v2", wantPaths: 3},
		// Error paths.
		{file: "po.avro", src: "x", wantErr: "unknown schema format"},
		{file: "po", src: sqlSrc, wantErr: "unknown schema format"},
		{file: "empty.sql", src: "-- comments only, no tables", wantErr: "empty"},
		{file: "empty.ddl", src: "", wantErr: "empty"},
		{file: "broken.xsd", src: "not xml at all", wantErr: "xsd"},
		{file: "broken.json", src: "{}", wantErr: "properties"},
		{file: "broken.dtd", src: "", wantErr: "dtd"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), tc.file)
			if err := os.WriteFile(path, []byte(tc.src), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := coma.LoadFile(path)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("LoadFile succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.Name != tc.wantName {
				t.Errorf("schema name %q, want %q", s.Name, tc.wantName)
			}
			if tc.wantPaths > 0 && len(s.Paths()) != tc.wantPaths {
				t.Errorf("%d paths, want %d", len(s.Paths()), tc.wantPaths)
			}
			if len(s.Paths()) == 0 {
				t.Error("loaded schema has no paths")
			}
		})
	}
}

// TestLoadFileUnreadable covers the I/O error path: a missing file and
// (where the platform supports it) a permission-denied file.
func TestLoadFileUnreadable(t *testing.T) {
	if _, err := coma.LoadFile(filepath.Join(t.TempDir(), "nope.sql")); err == nil {
		t.Error("LoadFile of a missing file succeeded")
	}
	if runtime.GOOS != "windows" && os.Getuid() != 0 { // root reads anything
		path := filepath.Join(t.TempDir(), "locked.sql")
		if err := os.WriteFile(path, []byte("CREATE TABLE T (a INT);"), 0o000); err != nil {
			t.Fatal(err)
		}
		if _, err := coma.LoadFile(path); err == nil {
			t.Error("LoadFile of an unreadable file succeeded")
		}
	}
}
