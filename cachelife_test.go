package coma_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	coma "repro"
)

// tinyDDL builds a small distinct relational schema per seed: big
// enough to produce correspondences, small enough that a thousand
// served matches stay cheap.
func tinyDDL(seed int) string {
	return fmt.Sprintf(`CREATE TABLE T%d.Orders (
  orderNo%d INT,
  customerName VARCHAR(100),
  city VARCHAR(50),
  amount%d DECIMAL(10,2)
);`, seed, seed, seed)
}

// newServedRepo opens a single-store repository with n tiny stored
// schemas behind the comaserve HTTP API and returns the engine serving
// it (cache-lifecycle assertions read it directly).
func newServedRepo(t *testing.T, n int, opts ...coma.Option) (*httptest.Server, *coma.Engine) {
	t.Helper()
	repo, err := coma.OpenRepository(filepath.Join(t.TempDir(), "served.repo"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for i := 0; i < n; i++ {
		s, err := coma.LoadSQL(fmt.Sprintf("Stored%d", i), tinyDDL(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := coma.NewEngine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(repo.Handler(engine))
	t.Cleanup(ts.Close)
	return ts, engine
}

// TestServedInlineAnalyzerBounded is the heap-stability acceptance
// test of the cache-lifecycle subsystem: a long burst of inline POST
// /match requests must leave the engine's analysis cache holding only
// the stored (pinned) schemas — before the end-of-batch eviction,
// every request leaked one analyzer entry keyed by its throwaway
// schema instance.
func TestServedInlineAnalyzerBounded(t *testing.T) {
	const stored = 3
	ts, engine := newServedRepo(t, stored,
		coma.WithAnalyzerLimit(64), coma.WithPersistentColumnCache())
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	requests := 1000
	if testing.Short() {
		requests = 100
	}
	// A handful of distinct inline sources, each posted many times —
	// every request still parses its own throwaway schema instance, the
	// leak's exact shape.
	for i := 0; i < requests; i++ {
		resp, err := client.Match(ctx, coma.MatchRequest{
			Schema: coma.SchemaPayload{
				Name:   "inline",
				Format: "sql",
				Source: tinyDDL(100 + i%5),
			},
			TopK: 2,
		})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(resp.Candidates) != 2 {
			t.Fatalf("request %d: %d candidates, want 2", i, len(resp.Candidates))
		}
	}

	if got := engine.CachedAnalyses(); got != stored {
		t.Errorf("analyzer holds %d analyses after %d inline matches, want %d (stored schemas only)",
			got, requests, stored)
	}
}

// TestServedInlineAnalyzerBoundedSharded is the sharded form: after a
// burst of inline matches against a sharded repository, every shard
// engine's cache holds at most the stored schemas (each shard analyzes
// its own candidates plus — for the fan-out's first shard — pinned
// incoming instances; never the inline throwaways).
func TestServedInlineAnalyzerBoundedSharded(t *testing.T) {
	const shards, stored = 4, 6
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), "shards"), shards,
		coma.WithAnalyzerLimit(64), coma.WithPersistentColumnCache())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for i := 0; i < stored; i++ {
		s, err := coma.LoadSQL(fmt.Sprintf("Stored%d", i), tinyDDL(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(repo.Handler())
	t.Cleanup(ts.Close)
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	for i := 0; i < 200; i++ {
		if _, err := client.Match(ctx, coma.MatchRequest{
			Schema: coma.SchemaPayload{Name: "inline", Format: "sql", Source: tinyDDL(50 + i%4)},
		}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 0; i < shards; i++ {
		if got := repo.ShardEngine(i).CachedAnalyses(); got > stored {
			t.Errorf("shard %d holds %d analyses, want <= %d stored schemas", i, got, stored)
		}
	}
}

// TestPersistentColumnCacheGolden pins bit-identity of the
// engine-scoped column cache against the per-batch behavior of PR 3/4:
// MatchAll batches (cold and warm rounds) and repeated single Matches
// through a persistent-column engine agree bit for bit with a plain
// engine. It also pins the retention split: an Analyze'd (pinned)
// incoming schema keeps its analysis across batches, a transient one
// is evicted at batch end.
func TestPersistentColumnCacheGolden(t *testing.T) {
	const n = 6
	schemas := make([]*coma.Schema, n)
	for i := range schemas {
		var err error
		if schemas[i], err = coma.LoadSQL(fmt.Sprintf("S%d", i), tinyDDL(i)); err != nil {
			t.Fatal(err)
		}
	}
	incoming, cands := schemas[0], schemas[1:]

	plain, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.MatchAll(incoming, cands)
	if err != nil {
		t.Fatal(err)
	}
	wantSingle, err := plain.Match(incoming, cands[0])
	if err != nil {
		t.Fatal(err)
	}

	persist, err := coma.NewEngine(coma.WithPersistentColumnCache())
	if err != nil {
		t.Fatal(err)
	}
	persist.Analyze(incoming) // retained: columns persist across rounds
	for round := 0; round < 3; round++ {
		got, err := persist.MatchAll(incoming, cands)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range got {
			assertResultsEqual(t, fmt.Sprintf("round %d candidate %d", round, i), res, want[i])
		}
	}
	gotSingle, err := persist.Match(incoming, cands[0])
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "single match on warm columns", gotSingle, wantSingle)

	// Retention split: the pinned incoming plus the candidates stay
	// analyzed; a transient incoming is evicted at batch end.
	if got := persist.CachedAnalyses(); got != n {
		t.Errorf("pinned engine caches %d analyses, want %d", got, n)
	}
	transient, err := coma.LoadSQL("Transient", tinyDDL(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.MatchAll(transient, cands); err != nil {
		t.Fatal(err)
	}
	if got := persist.CachedAnalyses(); got != n {
		t.Errorf("after a transient batch the engine caches %d analyses, want %d (incoming evicted)", got, n)
	}

	// Releasing the pin makes the incoming transient again.
	persist.Release(incoming)
	if _, err := persist.MatchAll(incoming, cands); err != nil {
		t.Fatal(err)
	}
	if got := persist.CachedAnalyses(); got != n-1 {
		t.Errorf("after Release the engine caches %d analyses, want %d", got, n-1)
	}
}

// TestServedChurnCacheLifecycle is the -race satellite: concurrent
// inline matches, schema PUT/DELETE churn and wholesale engine
// invalidation against a live server. Afterwards the analyzer must
// hold no more than the surviving stored schemas, and a served match
// must agree bit for bit with a fresh local engine over the final
// store — no stale analyses, no stale columns.
func TestServedChurnCacheLifecycle(t *testing.T) {
	const stored = 3
	ts, engine := newServedRepo(t, stored,
		coma.WithAnalyzerLimit(64), coma.WithPersistentColumnCache())
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	const writers, matchers, rounds = 2, 3, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("Churn%d", w)
				if _, err := client.PutSchema(ctx, name, "sql", tinyDDL(10+w*rounds+r)); err != nil {
					t.Errorf("put %s: %v", name, err)
					return
				}
				if r%2 == 1 {
					if err := client.DeleteSchema(ctx, name); err != nil {
						t.Errorf("delete %s: %v", name, err)
						return
					}
				}
			}
		}(w)
	}
	for m := 0; m < matchers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := client.Match(ctx, coma.MatchRequest{
					Schema: coma.SchemaPayload{Name: "inline", Format: "sql", Source: tinyDDL(20 + m)},
					TopK:   2,
				})
				if err != nil {
					t.Errorf("match: %v", err)
					return
				}
				if len(resp.Candidates) == 0 {
					t.Error("match: no candidates")
					return
				}
			}
		}(m)
	}
	// Wholesale invalidation churn: drops every cached analysis and
	// column mid-flight; in-flight batches keep their captured indexes
	// (immutable) and later ones rebuild.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			engine.Invalidate(nil)
		}
	}()
	wg.Wait()

	names, err := client.Schemas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Analyzer tombstones close the former residual: a DELETE racing an
	// in-flight batch can no longer resurrect the deleted candidate's
	// analysis, so the cache bound holds right after churn with no
	// wholesale invalidation — the analyzer holds at most the surviving
	// stored schemas (every batch evicted its own transients).
	if got := engine.CachedAnalyses(); got > len(names) {
		t.Errorf("right after churn the engine caches %d analyses, want <= %d (stored schemas)",
			got, len(names))
	}

	// Staleness check: replace one schema's structure, then compare the
	// served match against a fresh engine over the same pair.
	if _, err := client.PutSchema(ctx, "Stored0", "sql",
		`CREATE TABLE R.Replaced (invoiceNo INT, supplierName VARCHAR(80), street VARCHAR(60));`); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Match(ctx, coma.MatchRequest{
		Schema: coma.SchemaPayload{Name: "probe", Format: "sql", Source: tinyDDL(42)},
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	probe, err := coma.LoadSQL("probe", tinyDDL(42))
	if err != nil {
		t.Fatal(err)
	}
	// Each writer's final action on its Churn name is a delete (odd
	// last round), so the final store is exactly the three Stored
	// schemas — rebuild them locally for the reference match.
	localSrc := map[string]string{
		"Stored0": `CREATE TABLE R.Replaced (invoiceNo INT, supplierName VARCHAR(80), street VARCHAR(60));`,
		"Stored1": tinyDDL(1),
		"Stored2": tinyDDL(2),
	}
	if len(resp.Candidates) != len(localSrc) {
		t.Fatalf("final store serves %d candidates, want %d", len(resp.Candidates), len(localSrc))
	}
	if len(names) != len(localSrc) {
		t.Fatalf("final store lists %d schemas, want %d", len(names), len(localSrc))
	}
	// The probe batch analyzed the three stored candidates and evicted
	// its own transient incoming: the steady-state cache holds exactly
	// the stored schemas again.
	if got := engine.CachedAnalyses(); got != len(localSrc) {
		t.Errorf("analyzer holds %d analyses after post-churn match, want %d (stored schemas only)",
			got, len(localSrc))
	}
	for _, cand := range resp.Candidates {
		src, ok := localSrc[cand.Schema]
		if !ok {
			t.Fatalf("unexpected surviving schema %q", cand.Schema)
		}
		storedSchema, err := coma.LoadSQL(cand.Schema, src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Match(probe, storedSchema)
		if err != nil {
			t.Fatal(err)
		}
		if cand.SchemaSim != want.SchemaSim {
			t.Errorf("served %s similarity %v, fresh engine %v — stale cache state",
				cand.Schema, cand.SchemaSim, want.SchemaSim)
		}
		if len(cand.Correspondences) != len(want.Mapping.Correspondences()) {
			t.Errorf("served %s has %d correspondences, fresh engine %d",
				cand.Schema, len(cand.Correspondences), len(want.Mapping.Correspondences()))
		}
	}
}

// TestColumnCachePruneVsUnrelatedInvalidate is the race regression for
// the schema mutation counter: the persistent column cache's prune
// loop reads OTHER schemas' versions while a match runs, so mutating
// and Invalidate-ing an unrelated schema concurrently with a match
// must be race-free (atomic version counter).
func TestColumnCachePruneVsUnrelatedInvalidate(t *testing.T) {
	persist, err := coma.NewEngine(coma.WithPersistentColumnCache())
	if err != nil {
		t.Fatal(err)
	}
	a, err := coma.LoadSQL("A", tinyDDL(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := coma.LoadSQL("B", tinyDDL(2))
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]*coma.Schema, 3)
	for i := range cands {
		if cands[i], err = coma.LoadSQL(fmt.Sprintf("C%d", i), tinyDDL(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	persist.Analyze(a)
	persist.Analyze(b)
	// Seed a column entry keyed by b's index so later prune scans read
	// b's version while a is being matched.
	if _, err := persist.MatchAll(b, cands); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := persist.MatchAll(a, cands); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			b.Invalidate() // unrelated schema mutates mid-match
		}
	}()
	wg.Wait()
}
