package coma_test

import (
	"sync"
	"testing"

	coma "repro"
)

// TestConcurrentMatch drives the public Match API from many goroutines
// sharing the same schemas — the repository-server usage pattern. Run
// with -race it proves the parallel engine (concurrent matchers,
// row-parallel fills, sharded caches) is data-race free, and it checks
// every concurrent result equals the sequential one.
func TestConcurrentMatch(t *testing.T) {
	s1, err := coma.LoadSQL("PO1", ddlPO1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := coma.LoadXSD("PO2", []byte(xsdPO2))
	if err != nil {
		t.Fatal(err)
	}
	base, err := coma.Match(s1, s2, coma.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	results := make([]*coma.Result, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			res, err := coma.Match(s1, s2, coma.WithWorkers(4))
			if err != nil {
				errs <- err
				return
			}
			results[g] = res
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g, res := range results {
		if res.SchemaSim != base.SchemaSim {
			t.Errorf("goroutine %d: schema sim %v, sequential %v", g, res.SchemaSim, base.SchemaSim)
		}
		bc, rc := base.Mapping.Correspondences(), res.Mapping.Correspondences()
		if len(bc) != len(rc) {
			t.Fatalf("goroutine %d: %d correspondences, sequential %d", g, len(rc), len(bc))
		}
		for i := range bc {
			if bc[i] != rc[i] {
				t.Errorf("goroutine %d: correspondence %d = %v, sequential %v", g, i, rc[i], bc[i])
			}
		}
	}
}

// TestConcurrentEngineSharedIndex shares ONE engine — and therefore
// one cached SchemaIndex per schema — across many concurrent Match
// calls. Run with -race it proves the analysis layer (index build,
// analyzer cache, annotated profiles) is safe to share, and it checks
// every result equals the sequential baseline.
func TestConcurrentEngineSharedIndex(t *testing.T) {
	s1, err := coma.LoadSQL("PO1", ddlPO1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := coma.LoadXSD("PO2", []byte(xsdPO2))
	if err != nil {
		t.Fatal(err)
	}
	base, err := coma.Match(s1, s2, coma.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	engine, err := coma.NewEngine(coma.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	engine.Analyze(s1) // front-load one side; the other builds on demand

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	results := make([]*coma.Result, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			res, err := engine.Match(s1, s2)
			if err != nil {
				errs <- err
				return
			}
			results[g] = res
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g, res := range results {
		if res.SchemaSim != base.SchemaSim {
			t.Errorf("goroutine %d: schema sim %v, sequential %v", g, res.SchemaSim, base.SchemaSim)
		}
		bc, rc := base.Mapping.Correspondences(), res.Mapping.Correspondences()
		if len(bc) != len(rc) {
			t.Fatalf("goroutine %d: %d correspondences, sequential %d", g, len(rc), len(bc))
		}
		for i := range bc {
			if bc[i] != rc[i] {
				t.Errorf("goroutine %d: correspondence %d = %v, sequential %v", g, i, rc[i], bc[i])
			}
		}
	}
}
